// Package sketch implements the classic linear sketches the paper builds
// on: Count-Sketch (Charikar, Chen, Farach-Colton) and Count-Min
// (Cormode, Muthukrishnan). Both are linear maps of the frequency vector,
// so sketches of two streams can be added, subtracted, and compared; the
// alpha-property structures in sibling packages (csss, inner, heavy) reuse
// these tables on sampled sub-streams.
//
// The Count-Sketch guarantee reproduced here is Lemma 2 of the paper: a
// d x 6k table answers point queries within Err^k_2(f)/sqrt(k) with high
// probability for d = O(log n), and each row's L2 norm estimates ||f||_2
// within (1 +- O(1/sqrt(cols))) (Lemma 4).
package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/hash"
	"repro/internal/nt"
)

// CountSketch is a d-row, w-column Count-Sketch with int64 counters.
type CountSketch struct {
	buckets *hash.Buckets
	rows    int
	cols    uint64
	table   [][]int64
	maxAbs  int64 // largest |counter| ever held (diagnostics)
	mass    int64 // sum of |delta| consumed: counters must be sized for it
}

// NewCountSketch allocates a rows x cols Count-Sketch with fresh 4-wise
// independent hash functions drawn from rng.
func NewCountSketch(rng *rand.Rand, rows int, cols uint64) *CountSketch {
	return NewCountSketchWithBuckets(hash.NewBuckets(rng, rows, cols))
}

// NewCountSketchWithBuckets builds a Count-Sketch over existing hash
// functions. Two sketches sharing Buckets are comparable: their tables
// are coordinate-wise linear in their input streams, which the
// inner-product estimators require.
func NewCountSketchWithBuckets(b *hash.Buckets) *CountSketch {
	cs := &CountSketch{buckets: b, rows: b.Rows, cols: b.Cols}
	cs.table = make([][]int64, cs.rows)
	for i := range cs.table {
		cs.table[i] = make([]int64, cs.cols)
	}
	return cs
}

// Rows returns the number of rows d.
func (cs *CountSketch) Rows() int { return cs.rows }

// Cols returns the number of columns (buckets per row).
func (cs *CountSketch) Cols() uint64 { return cs.cols }

// Buckets exposes the hash wiring for sketches that must share it.
func (cs *CountSketch) Buckets() *hash.Buckets { return cs.buckets }

// Update adds delta to coordinate i.
func (cs *CountSketch) Update(i uint64, delta int64) {
	if delta >= 0 {
		cs.mass += delta
	} else {
		cs.mass -= delta
	}
	for r := 0; r < cs.rows; r++ {
		c := cs.buckets.Bucket(r, i)
		cs.table[r][c] += int64(cs.buckets.Sign(r, i)) * delta
		if a := abs64(cs.table[r][c]); a > cs.maxAbs {
			cs.maxAbs = a
		}
	}
}

// RowEstimate returns row r's estimate g_r(i) * table[r][h_r(i)] of f_i.
func (cs *CountSketch) RowEstimate(r int, i uint64) int64 {
	return int64(cs.buckets.Sign(r, i)) * cs.table[r][cs.buckets.Bucket(r, i)]
}

// Query returns the median-of-rows point estimate of f_i (Lemma 2).
func (cs *CountSketch) Query(i uint64) int64 {
	ests := make([]int64, cs.rows)
	for r := 0; r < cs.rows; r++ {
		ests[r] = cs.RowEstimate(r, i)
	}
	return medianInt64(ests)
}

// RowL2 returns the L2 norm of row r, a (1 +- O(1/sqrt(cols))) estimate
// of ||f||_2 with probability 99/100 (Lemma 4).
func (cs *CountSketch) RowL2(r int) float64 {
	var s float64
	for _, v := range cs.table[r] {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// L2Estimate returns the median of the per-row L2 estimates.
func (cs *CountSketch) L2Estimate() float64 {
	ests := make([]float64, cs.rows)
	for r := range ests {
		ests[r] = cs.RowL2(r)
	}
	sort.Float64s(ests)
	return ests[len(ests)/2]
}

// RowResidualL2 returns the L2 norm of row r after subtracting the
// sketch of the sparse vector yhat (values at fixed-point scale fpUnit:
// the table is assumed to hold values multiplied by fpUnit). Used by the
// precision-sampling tail estimator (Lemma 5) on dense baselines.
func (cs *CountSketch) RowResidualL2(r int, yhat map[uint64]float64, fpUnit float64) float64 {
	resid := make([]float64, cs.cols)
	for c := uint64(0); c < cs.cols; c++ {
		resid[c] = float64(cs.table[r][c]) / fpUnit
	}
	for j, v := range yhat {
		c := cs.buckets.Bucket(r, j)
		resid[c] -= float64(cs.buckets.Sign(r, j)) * v
	}
	var t float64
	for _, v := range resid {
		t += v * v
	}
	return math.Sqrt(t)
}

// RowInner returns <A_r, B_r> for row r of two sketches sharing hashes;
// its expectation is <f, g>.
func (cs *CountSketch) RowInner(other *CountSketch, r int) int64 {
	if cs.buckets != other.buckets {
		panic("sketch: RowInner requires sketches sharing hash.Buckets")
	}
	var s int64
	for c := uint64(0); c < cs.cols; c++ {
		s += cs.table[r][c] * other.table[r][c]
	}
	return s
}

// InnerProduct returns the median over rows of the per-row inner
// products, an estimate of <f, g> with additive error
// O(||f||_2 ||g||_2 / sqrt(cols)).
func (cs *CountSketch) InnerProduct(other *CountSketch) int64 {
	ests := make([]int64, cs.rows)
	for r := 0; r < cs.rows; r++ {
		ests[r] = cs.RowInner(other, r)
	}
	return medianInt64(ests)
}

// Add accumulates another sketch sharing the same hashes (linearity).
func (cs *CountSketch) Add(other *CountSketch) {
	cs.combine(other, 1)
}

// Sub subtracts another sketch sharing the same hashes.
func (cs *CountSketch) Sub(other *CountSketch) {
	cs.combine(other, -1)
}

func (cs *CountSketch) combine(other *CountSketch, sign int64) {
	if cs.buckets != other.buckets {
		panic("sketch: combining sketches with different hashes")
	}
	for r := range cs.table {
		for c := range cs.table[r] {
			cs.table[r][c] += sign * other.table[r][c]
			if a := abs64(cs.table[r][c]); a > cs.maxAbs {
				cs.maxAbs = a
			}
		}
	}
}

// Clone returns a deep copy sharing the hash functions.
func (cs *CountSketch) Clone() *CountSketch {
	c := NewCountSketchWithBuckets(cs.buckets)
	for r := range cs.table {
		copy(c.table[r], cs.table[r])
	}
	c.maxAbs = cs.maxAbs
	return c
}

// SpaceBits charges each counter at capacity: a turnstile Count-Sketch
// bucket can absorb the entire stream mass, so it must be dimensioned at
// log2(m M) + 1 bits (the paper's model for the dense baselines), plus
// the hash seeds.
func (cs *CountSketch) SpaceBits() int64 {
	perCounter := int64(nt.BitsFor(uint64(cs.mass))) + 1
	return int64(cs.rows)*int64(cs.cols)*perCounter + cs.buckets.SpaceBits()
}

// String summarizes dimensions for diagnostics.
func (cs *CountSketch) String() string {
	return fmt.Sprintf("CountSketch{%dx%d, maxAbs=%d}", cs.rows, cs.cols, cs.maxAbs)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func medianInt64(xs []int64) int64 {
	s := make([]int64, len(xs))
	copy(s, xs)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
