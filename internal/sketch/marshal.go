package sketch

import (
	"encoding/binary"
	"errors"

	"repro/internal/hash"
	"repro/internal/wire"
)

// Binary layout of a CountSketch: "CS" magic, rows, cols, maxAbs, mass,
// the hash wiring, then rows*cols little-endian int64 counters. A
// deserialized sketch can be combined (Add/Sub) with any sketch carrying
// the same wiring — the distributed-aggregation and synchronization
// use cases of linear sketches.

var errBadSketchData = errors.New("sketch: malformed CountSketch data")

// MarshalBinary encodes the sketch including its hash functions.
func (cs *CountSketch) MarshalBinary() ([]byte, error) {
	wiring, err := cs.buckets.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 64+len(wiring)+8*cs.rows*int(cs.cols))
	buf = append(buf, 'C', 'S')
	var hdr [40]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(cs.rows))
	binary.LittleEndian.PutUint64(hdr[4:], cs.cols)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(cs.MaxAbs()))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(cs.mass))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(len(wiring)))
	buf = append(buf, hdr[:32]...)
	buf = append(buf, wiring...)
	var cell [8]byte
	for r := range cs.table {
		for _, v := range cs.table[r] {
			binary.LittleEndian.PutUint64(cell[:], uint64(v))
			buf = append(buf, cell[:]...)
		}
	}
	return buf, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (cs *CountSketch) UnmarshalBinary(data []byte) error {
	if len(data) < 34 || data[0] != 'C' || data[1] != 'S' {
		return errBadSketchData
	}
	rows := int(binary.LittleEndian.Uint32(data[2:]))
	cols := binary.LittleEndian.Uint64(data[6:])
	// data[14:22] holds the encoder's maxAbs diagnostic; it is derivable
	// from the table (MaxAbs), so decoding ignores it.
	mass := int64(binary.LittleEndian.Uint64(data[22:]))
	wlen := int(binary.LittleEndian.Uint32(data[30:]))
	if rows < 1 || cols < 1 || wlen < 0 {
		return errBadSketchData
	}
	pos := 34
	if pos+wlen > len(data) {
		return errBadSketchData
	}
	buckets := &hash.Buckets{}
	if err := buckets.UnmarshalBinary(data[pos : pos+wlen]); err != nil {
		return err
	}
	pos += wlen
	if buckets.Rows != rows || buckets.Cols != cols {
		return errBadSketchData
	}
	need := rows * int(cols) * 8
	if len(data)-pos != need {
		return errBadSketchData
	}
	flat := make([]int64, uint64(rows)*cols)
	table := make([][]int64, rows)
	for r := range table {
		table[r] = flat[uint64(r)*cols : uint64(r+1)*cols : uint64(r+1)*cols]
		for c := range table[r] {
			table[r][c] = int64(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		}
	}
	cs.buckets, cs.rows, cs.cols = buckets, rows, cols
	cs.flat, cs.table, cs.mass = flat, table, mass
	cs.qInt = make([]int64, rows)
	cs.qFloat = make([]float64, rows)
	cs.upCols = make([]uint64, rows)
	cs.upSigns = make([]int64, rows)
	return nil
}

// CombineRemote adds (sign > 0) or subtracts (sign < 0) a serialized
// sketch into this one, verifying the wirings match by re-encoding —
// the receive-side of a synchronization exchange.
func (cs *CountSketch) CombineRemote(data []byte, sign int) error {
	remote := &CountSketch{}
	if err := remote.UnmarshalBinary(data); err != nil {
		return err
	}
	localWiring, err := cs.buckets.MarshalBinary()
	if err != nil {
		return err
	}
	remoteWiring, err := remote.buckets.MarshalBinary()
	if err != nil {
		return err
	}
	if string(localWiring) != string(remoteWiring) {
		return errors.New("sketch: remote sketch uses different hash functions")
	}
	// Graft the remote table onto the local wiring so combine's pointer
	// check passes.
	remote.buckets = cs.buckets
	if sign >= 0 {
		cs.Add(remote)
	} else {
		cs.Sub(remote)
	}
	cs.mass += remote.mass
	return nil
}

// countMinMagic/countMinFormatV1 frame the CountMin wire layout: the
// per-row pairwise hashes, the running totals, then the counter table.
const (
	countMinMagic    = "SM"
	countMinFormatV1 = 1
)

// MarshalBinary encodes the Count-Min including its hash functions.
func (cm *CountMin) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(countMinMagic, countMinFormatV1)
	w.U32(uint32(cm.rows))
	w.U64(cm.cols)
	w.I64(cm.maxAbs)
	w.I64(cm.total)
	for _, h := range cm.hs {
		if err := w.Marshal(h); err != nil {
			return nil, err
		}
	}
	for r := 0; r < cm.rows; r++ {
		w.I64s(cm.table[r])
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a Count-Min serialized by MarshalBinary. On
// failure the receiver is left unchanged.
func (cm *CountMin) UnmarshalBinary(data []byte) error {
	r, v, err := wire.NewReader(data, countMinMagic)
	if err != nil {
		return err
	}
	if v != countMinFormatV1 {
		return errors.New("sketch: unsupported CountMin format version")
	}
	rows := int(r.U32())
	cols := r.U64()
	maxAbs := r.I64()
	total := r.I64()
	if r.Err() != nil {
		return r.Err()
	}
	if rows < 1 || rows > r.Remaining() || cols < 1 {
		return errors.New("sketch: bad CountMin dimensions")
	}
	hs := make([]*hash.KWise, rows)
	for i := range hs {
		hs[i] = &hash.KWise{}
		r.Unmarshal(hs[i])
	}
	table := make([][]int64, rows)
	for i := range table {
		table[i] = r.I64s()
	}
	if err := r.Done(); err != nil {
		return err
	}
	for i := range table {
		if uint64(len(table[i])) != cols {
			return errors.New("sketch: CountMin row length disagrees with dimensions")
		}
	}
	cm.rows, cm.cols = rows, cols
	cm.hs = hs
	// NewPairRows returns nil when any decoded hash is not pairwise
	// (hostile or legacy wire state); the batch paths then fall back to
	// the per-row RangeBatch loop.
	cm.pairs = hash.NewPairRows(hs)
	cm.table = table
	cm.maxAbs, cm.total = maxAbs, total
	cm.qInt = make([]int64, rows)
	return nil
}
