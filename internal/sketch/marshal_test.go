package sketch

import (
	"math/rand"
	"testing"
)

func TestCountSketchMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cs := NewCountSketch(rng, 5, 64)
	for i := uint64(0); i < 500; i++ {
		cs.Update(i, int64(i%7)-3)
	}
	data, err := cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &CountSketch{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if restored.Query(i) != cs.Query(i) {
			t.Fatalf("query %d differs after round trip", i)
		}
	}
	if restored.SpaceBits() != cs.SpaceBits() {
		t.Errorf("SpaceBits differs: %d vs %d", restored.SpaceBits(), cs.SpaceBits())
	}
}

// TestCombineRemote: the difference of two serialized sketches built on
// the same wiring answers queries about f - g.
func TestCombineRemote(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewCountSketch(rng, 7, 256)
	b := NewCountSketchWithBuckets(a.Buckets())
	a.Update(5, 100)
	a.Update(9, 40)
	b.Update(9, 40)
	b.Update(11, 25)
	wire, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CombineRemote(wire, -1); err != nil {
		t.Fatal(err)
	}
	// a now sketches f - g: {5: 100, 11: -25}.
	if got := a.Query(5); got != 100 {
		t.Errorf("Query(5) = %d, want 100", got)
	}
	if got := a.Query(9); got != 0 {
		t.Errorf("Query(9) = %d, want 0", got)
	}
	if got := a.Query(11); got != -25 {
		t.Errorf("Query(11) = %d, want -25", got)
	}
}

func TestCombineRemoteRejectsForeign(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewCountSketch(rng, 3, 16)
	b := NewCountSketch(rng, 3, 16) // fresh hashes
	wire, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CombineRemote(wire, 1); err == nil {
		t.Error("expected rejection of foreign wiring")
	}
}

func TestCountMinMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cm := NewCountMin(rng, 5, 128)
	for i := uint64(0); i < 700; i++ {
		cm.Update(i%90, int64(i%11)-2)
	}
	data, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &CountMin{}
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 90; i++ {
		if restored.Query(i) != cm.Query(i) || restored.QueryMedian(i) != cm.QueryMedian(i) {
			t.Fatalf("query %d differs after round trip", i)
		}
	}
	if restored.Total() != cm.Total() || restored.SpaceBits() != cm.SpaceBits() {
		t.Errorf("diagnostics differ after round trip")
	}
	if err := restored.Merge(cm.Clone()); err != nil {
		t.Fatalf("merge of restored CountMin rejected: %v", err)
	}
}

func TestCountMinUnmarshalRejectsGarbage(t *testing.T) {
	cm := NewCountMin(rand.New(rand.NewSource(7)), 2, 8)
	cm.Update(1, 1)
	data, _ := cm.MarshalBinary()
	fresh := &CountMin{}
	if err := fresh.UnmarshalBinary(nil); err == nil {
		t.Error("accepted nil")
	}
	if err := fresh.UnmarshalBinary(data[:len(data)-2]); err == nil {
		t.Error("accepted truncated payload")
	}
	bad := append([]byte(nil), data...)
	bad[2] = 77
	if err := fresh.UnmarshalBinary(bad); err == nil {
		t.Error("accepted wrong version")
	}
}

func TestCountSketchUnmarshalRejectsGarbage(t *testing.T) {
	cs := &CountSketch{}
	for _, data := range [][]byte{nil, {9}, []byte("CSgarbagegarbagegarbagegarbagegar")} {
		if err := cs.UnmarshalBinary(data); err == nil {
			t.Errorf("accepted garbage of length %d", len(data))
		}
	}
	good, _ := NewCountSketch(rand.New(rand.NewSource(4)), 2, 8).MarshalBinary()
	if err := cs.UnmarshalBinary(good[:len(good)-3]); err == nil {
		t.Error("accepted truncated data")
	}
}
