package sketch

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/stream"
)

// splitByIndex partitions a stream by index into `parts` substreams,
// the same partition shape the sharded engine produces.
func splitByIndex(s *stream.Stream, parts int) [][]stream.Update {
	out := make([][]stream.Update, parts)
	for _, u := range s.Updates {
		p := int(u.Index) % parts
		out[p] = append(out[p], u)
	}
	return out
}

// TestCountSketchMergeBitForBit: Count-Sketch is linear, so merging
// same-seed sketches of split streams must reproduce the single-stream
// table exactly, counter for counter.
func TestCountSketchMergeBitForBit(t *testing.T) {
	s := gen.BoundedDeletion(gen.Config{N: 1 << 12, Items: 20000, Alpha: 4, Zipf: 1.2, Seed: 3})
	const seed = 99
	whole := NewCountSketch(rand.New(rand.NewSource(seed)), 5, 128)
	whole.UpdateBatch(s.Updates)

	parts := splitByIndex(s, 3)
	shards := make([]*CountSketch, len(parts))
	for i, p := range parts {
		shards[i] = NewCountSketch(rand.New(rand.NewSource(seed)), 5, 128)
		shards[i].UpdateBatch(p)
	}
	merged := shards[0]
	for _, sh := range shards[1:] {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	for r := range whole.table {
		for c := range whole.table[r] {
			if merged.table[r][c] != whole.table[r][c] {
				t.Fatalf("cell (%d,%d): merged %d, single-stream %d", r, c, merged.table[r][c], whole.table[r][c])
			}
		}
	}
	if merged.mass != whole.mass {
		t.Fatalf("mass: merged %d, single-stream %d", merged.mass, whole.mass)
	}
}

// TestCountSketchMergeRejectsDifferentSeeds: different hash wirings are
// refused with an error, not silently combined.
func TestCountSketchMergeRejectsDifferentSeeds(t *testing.T) {
	a := NewCountSketch(rand.New(rand.NewSource(1)), 5, 128)
	b := NewCountSketch(rand.New(rand.NewSource(2)), 5, 128)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different-seed CountSketches should fail")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("merging nil should fail")
	}
}

// TestCountMinMergeBitForBit mirrors the Count-Sketch test.
func TestCountMinMergeBitForBit(t *testing.T) {
	s := gen.BoundedDeletion(gen.Config{N: 1 << 12, Items: 20000, Alpha: 4, Zipf: 1.2, Seed: 4})
	const seed = 7
	whole := NewCountMin(rand.New(rand.NewSource(seed)), 5, 256)
	whole.UpdateBatch(s.Updates)

	parts := splitByIndex(s, 4)
	merged := NewCountMin(rand.New(rand.NewSource(seed)), 5, 256)
	merged.UpdateBatch(parts[0])
	for _, p := range parts[1:] {
		sh := NewCountMin(rand.New(rand.NewSource(seed)), 5, 256)
		sh.UpdateBatch(p)
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	for r := range whole.table {
		for c := range whole.table[r] {
			if merged.table[r][c] != whole.table[r][c] {
				t.Fatalf("cell (%d,%d): merged %d, single-stream %d", r, c, merged.table[r][c], whole.table[r][c])
			}
		}
	}
	if merged.total != whole.total {
		t.Fatalf("total: merged %d, single-stream %d", merged.total, whole.total)
	}
	if err := merged.Merge(NewCountMin(rand.New(rand.NewSource(seed+1)), 5, 256)); err == nil {
		t.Fatal("merging different-seed CountMins should fail")
	}
}

// TestCountSketchCloneIsolated: a clone shares no mutable state.
func TestCountSketchCloneIsolated(t *testing.T) {
	cs := NewCountSketch(rand.New(rand.NewSource(5)), 5, 64)
	cs.Update(10, 3)
	c := cs.Clone()
	c.Update(10, 40)
	if cs.Query(10) == c.Query(10) {
		t.Fatal("clone mutation leaked into the original")
	}
	if got := cs.Query(10); got != 3 {
		t.Fatalf("original query = %d, want 3", got)
	}
}

// TestCountMinCloneIsolated mirrors the Count-Sketch clone test.
func TestCountMinCloneIsolated(t *testing.T) {
	cm := NewCountMin(rand.New(rand.NewSource(6)), 4, 64)
	cm.Update(10, 3)
	c := cm.Clone()
	c.Update(10, 40)
	if got := cm.Query(10); got != 3 {
		t.Fatalf("original query = %d, want 3", got)
	}
	if got := c.Query(10); got != 43 {
		t.Fatalf("clone query = %d, want 43", got)
	}
}
