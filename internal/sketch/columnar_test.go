package sketch

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stream"
)

// columnarStream is a mixed-sign workload with repeated indices.
func columnarStream(seed int64) *stream.Stream {
	return gen.BoundedDeletion(gen.Config{N: 1 << 12, Items: 20000, Alpha: 4, Zipf: 1.2, Seed: seed})
}

// feedChunks pushes the stream through UpdateBatch in uneven chunks so
// batch boundaries land at arbitrary offsets.
func feedChunks(s *stream.Stream, up func([]stream.Update)) {
	sizes := []int{1, 7, 64, 321, 1024}
	for off, k := 0, 0; off < len(s.Updates); k++ {
		end := off + sizes[k%len(sizes)]
		if end > len(s.Updates) {
			end = len(s.Updates)
		}
		up(s.Updates[off:end])
		off = end
	}
}

// TestCountSketchColumnarMatchesScalar: the columnar batch path must
// leave the sketch bit-identical to per-update ingestion — table,
// mass, and therefore every query and the space accounting.
func TestCountSketchColumnarMatchesScalar(t *testing.T) {
	s := columnarStream(3)
	a := NewCountSketch(rand.New(rand.NewSource(5)), 7, 96)
	b := NewCountSketch(rand.New(rand.NewSource(5)), 7, 96)
	for _, u := range s.Updates {
		a.Update(u.Index, u.Delta)
	}
	feedChunks(s, b.UpdateBatch)
	for i := uint64(0); i < 1<<12; i += 17 {
		if qa, qb := a.Query(i), b.Query(i); qa != qb {
			t.Fatalf("Query(%d): scalar %d, columnar %d", i, qa, qb)
		}
	}
	if la, lb := a.L2Estimate(), b.L2Estimate(); la != lb {
		t.Fatalf("L2Estimate: scalar %v, columnar %v", la, lb)
	}
	if ma, mb := a.MaxAbs(), b.MaxAbs(); ma != mb {
		t.Fatalf("MaxAbs: scalar %d, columnar %d", ma, mb)
	}
	if sa, sb := a.SpaceBits(), b.SpaceBits(); sa != sb {
		t.Fatalf("SpaceBits: scalar %d, columnar %d", sa, sb)
	}
}

// queryKeySet builds a batched-read key set with never-updated points,
// adjacent duplicates, and non-adjacent duplicates.
func queryKeySet() []uint64 {
	keys := make([]uint64, 0, 600)
	for i := uint64(0); i < 1<<12; i += 17 {
		keys = append(keys, i)
	}
	keys = append(keys, 0, 0, 17, 17) // adjacent duplicates
	keys = append(keys, keys[:16]...) // non-adjacent duplicates
	return keys
}

// TestCountSketchQueryColumnsMatchesScalar: the batched read twin —
// QueryColumns answers must be bit-identical to per-key Query,
// including duplicate keys, and must not perturb the sketch.
func TestCountSketchQueryColumnsMatchesScalar(t *testing.T) {
	s := columnarStream(11)
	cs := NewCountSketch(rand.New(rand.NewSource(5)), 7, 96)
	feedChunks(s, cs.UpdateBatch)
	keys := queryKeySet()
	out := make([]int64, len(keys))
	b := core.GetBatch()
	cs.QueryColumns(b, keys, out)
	core.PutBatch(b)
	for j, k := range keys {
		if want := cs.Query(k); out[j] != want {
			t.Fatalf("QueryColumns[%d] (key %d) = %d, Query = %d", j, k, out[j], want)
		}
	}
}

// TestCountMinQueryColumnsMatchesScalar: same contract for Count-Min's
// min-of-rows batched read.
func TestCountMinQueryColumnsMatchesScalar(t *testing.T) {
	s := columnarStream(13)
	cm := NewCountMin(rand.New(rand.NewSource(9)), 5, 128)
	feedChunks(s, cm.UpdateBatch)
	keys := queryKeySet()
	out := make([]int64, len(keys))
	b := core.GetBatch()
	cm.QueryColumns(b, keys, out)
	core.PutBatch(b)
	for j, k := range keys {
		if want := cm.Query(k); out[j] != want {
			t.Fatalf("QueryColumns[%d] (key %d) = %d, Query = %d", j, k, out[j], want)
		}
	}
}

// TestCountMinColumnarMatchesScalar: same contract for Count-Min,
// including the order-sensitive largest-counter-ever peak (per-counter
// write sequences are preserved by the row-major sweep).
func TestCountMinColumnarMatchesScalar(t *testing.T) {
	s := columnarStream(7)
	a := NewCountMin(rand.New(rand.NewSource(9)), 5, 128)
	b := NewCountMin(rand.New(rand.NewSource(9)), 5, 128)
	for _, u := range s.Updates {
		a.Update(u.Index, u.Delta)
	}
	feedChunks(s, b.UpdateBatch)
	for i := uint64(0); i < 1<<12; i += 13 {
		if qa, qb := a.Query(i), b.Query(i); qa != qb {
			t.Fatalf("Query(%d): scalar %d, columnar %d", i, qa, qb)
		}
		if qa, qb := a.QueryMedian(i), b.QueryMedian(i); qa != qb {
			t.Fatalf("QueryMedian(%d): scalar %d, columnar %d", i, qa, qb)
		}
	}
	if ta, tb := a.Total(), b.Total(); ta != tb {
		t.Fatalf("Total: scalar %d, columnar %d", ta, tb)
	}
	if sa, sb := a.SpaceBits(), b.SpaceBits(); sa != sb {
		t.Fatalf("SpaceBits (maxAbs peak): scalar %d, columnar %d", sa, sb)
	}
}
