package sketch

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/stream"
)

// columnarStream is a mixed-sign workload with repeated indices.
func columnarStream(seed int64) *stream.Stream {
	return gen.BoundedDeletion(gen.Config{N: 1 << 12, Items: 20000, Alpha: 4, Zipf: 1.2, Seed: seed})
}

// feedChunks pushes the stream through UpdateBatch in uneven chunks so
// batch boundaries land at arbitrary offsets.
func feedChunks(s *stream.Stream, up func([]stream.Update)) {
	sizes := []int{1, 7, 64, 321, 1024}
	for off, k := 0, 0; off < len(s.Updates); k++ {
		end := off + sizes[k%len(sizes)]
		if end > len(s.Updates) {
			end = len(s.Updates)
		}
		up(s.Updates[off:end])
		off = end
	}
}

// TestCountSketchColumnarMatchesScalar: the columnar batch path must
// leave the sketch bit-identical to per-update ingestion — table,
// mass, and therefore every query and the space accounting.
func TestCountSketchColumnarMatchesScalar(t *testing.T) {
	s := columnarStream(3)
	a := NewCountSketch(rand.New(rand.NewSource(5)), 7, 96)
	b := NewCountSketch(rand.New(rand.NewSource(5)), 7, 96)
	for _, u := range s.Updates {
		a.Update(u.Index, u.Delta)
	}
	feedChunks(s, b.UpdateBatch)
	for i := uint64(0); i < 1<<12; i += 17 {
		if qa, qb := a.Query(i), b.Query(i); qa != qb {
			t.Fatalf("Query(%d): scalar %d, columnar %d", i, qa, qb)
		}
	}
	if la, lb := a.L2Estimate(), b.L2Estimate(); la != lb {
		t.Fatalf("L2Estimate: scalar %v, columnar %v", la, lb)
	}
	if ma, mb := a.MaxAbs(), b.MaxAbs(); ma != mb {
		t.Fatalf("MaxAbs: scalar %d, columnar %d", ma, mb)
	}
	if sa, sb := a.SpaceBits(), b.SpaceBits(); sa != sb {
		t.Fatalf("SpaceBits: scalar %d, columnar %d", sa, sb)
	}
}

// TestCountMinColumnarMatchesScalar: same contract for Count-Min,
// including the order-sensitive largest-counter-ever peak (per-counter
// write sequences are preserved by the row-major sweep).
func TestCountMinColumnarMatchesScalar(t *testing.T) {
	s := columnarStream(7)
	a := NewCountMin(rand.New(rand.NewSource(9)), 5, 128)
	b := NewCountMin(rand.New(rand.NewSource(9)), 5, 128)
	for _, u := range s.Updates {
		a.Update(u.Index, u.Delta)
	}
	feedChunks(s, b.UpdateBatch)
	for i := uint64(0); i < 1<<12; i += 13 {
		if qa, qb := a.Query(i), b.Query(i); qa != qb {
			t.Fatalf("Query(%d): scalar %d, columnar %d", i, qa, qb)
		}
		if qa, qb := a.QueryMedian(i), b.QueryMedian(i); qa != qb {
			t.Fatalf("QueryMedian(%d): scalar %d, columnar %d", i, qa, qb)
		}
	}
	if ta, tb := a.Total(), b.Total(); ta != tb {
		t.Fatalf("Total: scalar %d, columnar %d", ta, tb)
	}
	if sa, sb := a.SpaceBits(), b.SpaceBits(); sa != sb {
		t.Fatalf("SpaceBits (maxAbs peak): scalar %d, columnar %d", sa, sb)
	}
}
