package netagg

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	bounded "repro"
	"repro/engine"
	"repro/internal/ckpt"
	"repro/internal/netproto"
	"repro/internal/obs"
)

// AggregatorOptions configures an Aggregator. The zero value of every
// field is usable; Config must match the agents' exactly or their
// HELLOs are refused.
type AggregatorOptions struct {
	// Config is the sketch parameterization every agent must share.
	Config bounded.Config
	// Structures bounds which sketch kinds agents may ship (default
	// HeavyHitters). An agent may ship a subset; extra kinds are a
	// handshake error, not a silent drop.
	Structures engine.Structures
	// MaxFrame caps inbound frame payloads (default
	// netproto.DefaultMaxFrame).
	MaxFrame uint32
	// IOTimeout bounds each response write and the opening HELLO read
	// (default 10s). Steady-state reads are unbounded by default —
	// agents are allowed to go quiet between syncs — unless
	// IdleTimeout is set.
	IOTimeout time.Duration
	// IdleTimeout, when positive, drops connections that send nothing
	// for that long.
	IdleTimeout time.Duration
	// CheckpointDir, when set, makes the aggregator durable: the
	// per-agent table is checkpointed to this directory and recovered
	// on construction, so a restarted aggregator answers queries from
	// disk immediately and reconnecting agents resume incremental sync
	// instead of force-resending their full state.
	CheckpointDir string
	// CheckpointEvery paces the background checkpoint loop (default
	// 1s). Ticks where the committed state did not move write nothing.
	CheckpointEvery time.Duration
	// CheckpointKeep bounds retained checkpoints (default 3).
	CheckpointKeep int
	// Logf receives connection-lifecycle diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

func (o *AggregatorOptions) fill() {
	if o.Structures == 0 {
		o.Structures = engine.HeavyHitters
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = netproto.DefaultMaxFrame
	}
	if o.IOTimeout == 0 {
		o.IOTimeout = 10 * time.Second
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = time.Second
	}
	o.Logf = logfOr(o.Logf)
}

// agentState is one agent's latest committed contribution. Sketches
// are immutable once stored — a commit REPLACES pointers, it never
// mutates a stored sketch — so the merged-view builder may read them
// outside the lock after capturing the pointers under it.
type agentState struct {
	sketches map[engine.Structures]bounded.Sketch
	seq      uint64 // highest committed Snapshot.Seq
	gen      uint64 // agent engine generation at that snapshot
	// lastSyncUnixNano feeds the staleness gauge; a plain atomic so
	// the gauge readback needs no aggregator lock.
	lastSyncUnixNano atomic.Int64
	snapshots        atomic.Int64
}

// AgentSyncStats is one agent's sync freshness in Stats.
type AgentSyncStats struct {
	ID        string
	Seq       uint64
	Gen       uint64
	Snapshots int64
	// Staleness is the time since the last committed snapshot.
	Staleness time.Duration
}

// AggregatorStats is a point-in-time snapshot of the aggregator's
// counters — the exact-count contract surface (plain atomics, live in
// every build flavor including noobs) that the e2e tests assert
// incremental sync against.
type AggregatorStats struct {
	ConnsOpened, ConnsClosed         int64
	FramesIn, FramesOut              int64
	BytesIn, BytesOut                int64
	SnapshotsApplied, SnapshotsStale int64
	SnapshotsRejected                int64
	QueriesServed, QueryErrors       int64
	HandshakeFailures                int64
	ViewBuilds                       int64
	// CheckpointsWritten counts state checkpoints actually written
	// (unchanged-state ticks are not counted); RecoveredAgents counts
	// agents whose state was restored from disk at construction.
	CheckpointsWritten int64
	RecoveredAgents    int64
	Agents             []AgentSyncStats
}

// Aggregator terminates many agent connections, retains each agent's
// latest full snapshot, and answers client queries over the merged
// union. It never feeds an engine.Restore — periodic full snapshots
// REPLACE per-agent state keyed by agent ID, which is what keeps
// resends and reconnects from double-counting mass.
type Aggregator struct {
	opt AggregatorOptions

	// mu guards the per-agent state table. stateVersion increments on
	// every commit; the merged-view cache is tagged with the version it
	// was built from.
	mu           sync.Mutex
	agents       map[string]*agentState
	stateVersion uint64

	// qmu serializes query answering and guards the merged-view cache.
	// One merge rebuild serves every query until the next commit.
	qmu         sync.Mutex
	view        map[engine.Structures]bounded.Sketch
	viewVersion uint64
	haveView    bool

	lnMu   sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// Durability (checkpoint.go). ckptVersion is the stateVersion the
	// newest on-disk checkpoint was captured from, guarded by mu.
	store              *ckpt.Store
	ckptVersion        uint64
	ckptStop           chan struct{}
	ckptDone           chan struct{}
	checkpointsWritten atomic.Int64
	recoveredAgents    atomic.Int64

	connsOpened, connsClosed         atomic.Int64
	framesIn, framesOut              atomic.Int64
	bytesIn, bytesOut                atomic.Int64
	snapshotsApplied, snapshotsStale atomic.Int64
	snapshotsRejected                atomic.Int64
	queriesServed, queryErrors       atomic.Int64
	handshakeFailures                atomic.Int64
	viewBuilds                       atomic.Int64
	mergeNanos                       obs.Histogram
	applyNanos                       obs.Histogram

	// Metrics registration, so agents that first appear after
	// ExposeMetrics still get their staleness gauge.
	regMu       sync.Mutex
	reg         *obs.Registry
	regOwner    string
	regInstance string
	ckptUnreg   func()
}

// NewAggregator returns an Aggregator; call Serve with a listener to
// start accepting.
func NewAggregator(opt AggregatorOptions) (*Aggregator, error) {
	if err := opt.Config.Validate(); err != nil {
		return nil, fmt.Errorf("netagg: aggregator config: %w", err)
	}
	opt.fill()
	a := &Aggregator{
		opt:    opt,
		agents: make(map[string]*agentState),
		conns:  make(map[net.Conn]struct{}),
	}
	if opt.CheckpointDir != "" {
		if err := a.openCheckpoint(); err != nil {
			return nil, err
		}
		a.ckptStop = make(chan struct{})
		a.ckptDone = make(chan struct{})
		go a.checkpointLoop()
	}
	return a, nil
}

// Serve accepts connections on ln until Close (returns nil) or a
// listener failure (returns the error). One goroutine per connection.
func (a *Aggregator) Serve(ln net.Listener) error {
	a.lnMu.Lock()
	a.ln = ln
	a.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if a.closed.Load() {
				return nil
			}
			return err
		}
		a.lnMu.Lock()
		if a.closed.Load() {
			a.lnMu.Unlock()
			conn.Close()
			return nil
		}
		a.conns[conn] = struct{}{}
		a.lnMu.Unlock()
		a.connsOpened.Add(1)
		a.wg.Add(1)
		go a.handle(conn)
	}
}

// Close stops accepting, tears down live connections, and waits for
// handlers to drain. Committed agent state is retained (queries keep
// answering) until the Aggregator is garbage collected.
func (a *Aggregator) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	a.lnMu.Lock()
	if a.ln != nil {
		a.ln.Close()
	}
	for c := range a.conns {
		c.Close()
	}
	a.lnMu.Unlock()
	a.wg.Wait()

	if a.store != nil {
		// Stop the loop, then write one final checkpoint after every
		// handler has drained, so the newest committed state is on disk.
		close(a.ckptStop)
		<-a.ckptDone
		if err := a.Checkpoint(); err != nil {
			a.opt.Logf("netagg: aggregator final checkpoint: %v", err)
		}
	}

	a.regMu.Lock()
	if a.reg != nil {
		a.reg.RemoveOwner(a.regOwner)
		a.reg = nil
	}
	if a.ckptUnreg != nil {
		a.ckptUnreg()
		a.ckptUnreg = nil
	}
	a.regMu.Unlock()
	return nil
}

// Addr returns the listener address once Serve has one (for tests that
// listen on ":0").
func (a *Aggregator) Addr() net.Addr {
	a.lnMu.Lock()
	defer a.lnMu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

func (a *Aggregator) dropConn(conn net.Conn) {
	conn.Close()
	a.lnMu.Lock()
	delete(a.conns, conn)
	a.lnMu.Unlock()
	a.connsClosed.Add(1)
}

// handle runs one connection: HELLO/WELCOME handshake, then a loop of
// SNAPSHOT→ACK (agents) and QUERY→ANSWER (any role). Protocol
// violations get an ERROR frame and a close; a mid-frame disconnect
// simply ends the loop — nothing is committed for a snapshot whose
// frame never finished, so partial sends cannot corrupt global state.
func (a *Aggregator) handle(conn net.Conn) {
	defer a.wg.Done()
	defer a.dropConn(conn)

	cc := &countingConn{Conn: conn, in: &a.bytesIn, out: &a.bytesOut}
	mr := netproto.NewMessageReader(cc, a.opt.MaxFrame)
	mw := netproto.NewMessageWriter(cc)
	send := func(m netproto.Msg) error {
		conn.SetWriteDeadline(deadline(a.opt.IOTimeout))
		if err := mw.Write(m); err != nil {
			return err
		}
		a.framesOut.Add(1)
		return nil
	}
	refuse := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		a.handshakeFailures.Add(1)
		a.opt.Logf("netagg: aggregator refusing %s: %s", conn.RemoteAddr(), msg)
		send(&netproto.Error{Msg: msg})
	}

	conn.SetReadDeadline(deadline(a.opt.IOTimeout))
	first, err := mr.Next()
	if err != nil {
		a.handshakeFailures.Add(1)
		return
	}
	a.framesIn.Add(1)
	hello, ok := first.(*netproto.Hello)
	if !ok {
		refuse("expected HELLO, got %s", first.Kind())
		return
	}
	version, err := netproto.Negotiate(hello)
	if err != nil {
		refuse("%s", err)
		return
	}
	var lastSeq uint64
	if hello.Role == netproto.RoleAgent {
		if hello.Agent == "" {
			refuse("agent HELLO with empty agent id")
			return
		}
		if got, want := hello.Config, configEcho(a.opt.Config); got != want {
			refuse("config mismatch: agent %+v, aggregator %+v", got, want)
			return
		}
		if extra := engine.Structures(hello.Structures) &^ a.opt.Structures; extra != 0 {
			refuse("agent ships structures %#x the aggregator does not accept (accepts %#x)",
				hello.Structures, uint32(a.opt.Structures))
			return
		}
		a.mu.Lock()
		if st := a.agents[hello.Agent]; st != nil {
			lastSeq = st.seq
		}
		a.mu.Unlock()
	}
	if err := send(&netproto.Welcome{Version: version, LastSeq: lastSeq}); err != nil {
		return
	}

	for {
		conn.SetReadDeadline(deadline(a.opt.IdleTimeout))
		msg, err := mr.Next()
		if err != nil {
			return
		}
		a.framesIn.Add(1)
		switch m := msg.(type) {
		case *netproto.Snapshot:
			if hello.Role != netproto.RoleAgent {
				refuse("SNAPSHOT from non-agent role %s", hello.Role)
				return
			}
			if err := a.applySnapshot(hello.Agent, m); err != nil {
				a.snapshotsRejected.Add(1)
				refuse("snapshot %d from %q: %s", m.Seq, hello.Agent, err)
				return
			}
			if err := send(&netproto.Ack{Seq: m.Seq}); err != nil {
				return
			}
		case *netproto.Query:
			ans := a.answer(m)
			if ans.Err != "" {
				a.queryErrors.Add(1)
			}
			a.queriesServed.Add(1)
			if err := send(ans); err != nil {
				return
			}
		case *netproto.Error:
			a.opt.Logf("netagg: aggregator peer %s reported: %s", conn.RemoteAddr(), m.Msg)
			return
		default:
			refuse("unexpected %s frame", msg.Kind())
			return
		}
	}
}

// applySnapshot decodes every blob, then commits all of them in one
// critical section. Decode-before-commit is the atomicity guarantee:
// a snapshot with any malformed blob changes nothing.
func (a *Aggregator) applySnapshot(id string, m *netproto.Snapshot) error {
	start := obs.Now()
	decoded := make(map[engine.Structures]bounded.Sketch, len(m.Sketches))
	for _, blob := range m.Sketches {
		bit := engine.Structures(blob.StructureBit)
		if bit&^a.opt.Structures != 0 {
			return fmt.Errorf("structure bit %#x not accepted", blob.StructureBit)
		}
		if _, dup := decoded[bit]; dup {
			return fmt.Errorf("duplicate blob for structure bit %#x", blob.StructureBit)
		}
		sk, err := bounded.UnmarshalSketch(blob.Payload)
		if err != nil {
			return err
		}
		if !sketchMatchesBit(bit, sk) {
			return fmt.Errorf("blob for structure bit %#x decodes to %T", blob.StructureBit, sk)
		}
		decoded[bit] = sk
	}

	a.mu.Lock()
	st := a.agents[id]
	if st == nil {
		st = &agentState{sketches: make(map[engine.Structures]bounded.Sketch)}
		a.agents[id] = st
		a.registerAgentGauge(id, st)
	}
	if m.Seq <= st.seq {
		// A duplicate or reordered resend: the committed state already
		// covers it (full snapshots are idempotent), so skip the write
		// but still ACK so the sender can move on.
		a.mu.Unlock()
		a.snapshotsStale.Add(1)
		return nil
	}
	for bit, sk := range decoded {
		st.sketches[bit] = sk
	}
	st.seq = m.Seq
	st.gen = m.Gen
	st.lastSyncUnixNano.Store(time.Now().UnixNano())
	st.snapshots.Add(1)
	a.stateVersion++
	a.mu.Unlock()

	a.snapshotsApplied.Add(1)
	a.applyNanos.ObserveSince(start)
	return nil
}

// sketchMatchesBit pins the blob's declared structure bit to the
// concrete type its payload decoded to, so an agent cannot file an L1
// estimator under the heavy-hitters slot and skew the merged view.
func sketchMatchesBit(bit engine.Structures, sk bounded.Sketch) bool {
	switch bit {
	case engine.HeavyHitters:
		_, ok := sk.(*bounded.HeavyHitters)
		return ok
	case engine.L1Estimator:
		_, ok := sk.(*bounded.L1Estimator)
		return ok
	case engine.L0Estimator:
		_, ok := sk.(*bounded.L0Estimator)
		return ok
	case engine.L1Sampler:
		_, ok := sk.(*bounded.L1Sampler)
		return ok
	case engine.SupportSampler:
		_, ok := sk.(*bounded.SupportSampler)
		return ok
	case engine.L2HeavyHitters:
		_, ok := sk.(*bounded.L2HeavyHitters)
		return ok
	case engine.SyncSketch:
		_, ok := sk.(*bounded.SyncSketch)
		return ok
	}
	return false
}

// mergedView returns the union-of-all-agents sketch set, rebuilding
// the cache only when a commit moved stateVersion since the last
// build. Agents merge in sorted-ID order and blobs in ascending bit
// order, so the same committed state always produces the same merged
// bytes — the determinism the bit-identity e2e test leans on. The
// caller must hold qmu; the returned sketches stay valid (and are
// mutated only under qmu, e.g. heavy-hitters query scratch) until the
// next rebuild.
func (a *Aggregator) mergedView() (map[engine.Structures]bounded.Sketch, error) {
	a.mu.Lock()
	version := a.stateVersion
	if a.haveView && a.viewVersion == version {
		a.mu.Unlock()
		return a.view, nil
	}
	ids := make([]string, 0, len(a.agents))
	for id := range a.agents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	byBit := make(map[engine.Structures][]bounded.Sketch)
	for _, id := range ids {
		for bit, sk := range a.agents[id].sketches {
			byBit[bit] = append(byBit[bit], sk)
		}
	}
	a.mu.Unlock()

	// Merge outside the state lock: stored sketches are immutable, and
	// Merge's license to mutate its argument is satisfied by cloning
	// both sides. A commit racing this build just tags the cache with
	// the pre-commit version, forcing a rebuild on the next query.
	start := obs.Now()
	view := make(map[engine.Structures]bounded.Sketch, len(byBit))
	for bit, list := range byBit {
		acc := list[0].Clone()
		for _, sk := range list[1:] {
			if err := acc.Merge(sk.Clone()); err != nil {
				return nil, fmt.Errorf("netagg: merging %T: %w", sk, err)
			}
		}
		view[bit] = acc
	}
	a.viewBuilds.Add(1)
	a.mergeNanos.ObserveSince(start)

	a.view, a.viewVersion, a.haveView = view, version, true
	return view, nil
}

// answer executes one query against the merged view. An empty
// aggregator (no snapshots yet) answers like an empty stream: zero
// estimates, empty sets, zero norms. Asking for a structure the
// aggregator does not accept is an Answer.Err, not a connection error.
func (a *Aggregator) answer(q *netproto.Query) *netproto.Answer {
	ans := &netproto.Answer{ID: q.ID}
	need := func(bit engine.Structures) (bounded.Sketch, bool) {
		if bit&^a.opt.Structures != 0 {
			ans.Err = fmt.Sprintf("netagg: %s needs structure %#x, aggregator accepts %#x",
				q.Op, uint32(bit), uint32(a.opt.Structures))
			return nil, false
		}
		view, err := a.mergedView()
		if err != nil {
			ans.Err = err.Error()
			return nil, false
		}
		return view[bit], true
	}

	a.qmu.Lock()
	defer a.qmu.Unlock()
	switch q.Op {
	case netproto.OpEstimate:
		sk, ok := need(engine.HeavyHitters)
		if !ok {
			return ans
		}
		if sk == nil {
			ans.Values = make([]float64, len(q.Keys))
			return ans
		}
		ans.Values = sk.(*bounded.HeavyHitters).EstimateBatch(q.Keys)
	case netproto.OpHeavyHitters:
		sk, ok := need(engine.HeavyHitters)
		if !ok {
			return ans
		}
		if sk != nil {
			ans.Keys = sk.(*bounded.HeavyHitters).HeavyHitters()
		}
	case netproto.OpL1:
		sk, ok := need(engine.L1Estimator)
		if !ok {
			return ans
		}
		ans.Values = []float64{0}
		if sk != nil {
			ans.Values[0] = sk.(*bounded.L1Estimator).Estimate()
		}
	case netproto.OpSupport:
		sk, ok := need(engine.SupportSampler)
		if !ok {
			return ans
		}
		if sk != nil {
			ans.Keys = sk.(*bounded.SupportSampler).Recover()
		}
	default:
		ans.Err = fmt.Sprintf("netagg: unsupported query op %s", q.Op)
	}
	return ans
}

// Stats snapshots the aggregator's counters and per-agent freshness.
func (a *Aggregator) Stats() AggregatorStats {
	s := AggregatorStats{
		ConnsOpened:        a.connsOpened.Load(),
		ConnsClosed:        a.connsClosed.Load(),
		FramesIn:           a.framesIn.Load(),
		FramesOut:          a.framesOut.Load(),
		BytesIn:            a.bytesIn.Load(),
		BytesOut:           a.bytesOut.Load(),
		SnapshotsApplied:   a.snapshotsApplied.Load(),
		SnapshotsStale:     a.snapshotsStale.Load(),
		SnapshotsRejected:  a.snapshotsRejected.Load(),
		QueriesServed:      a.queriesServed.Load(),
		QueryErrors:        a.queryErrors.Load(),
		HandshakeFailures:  a.handshakeFailures.Load(),
		ViewBuilds:         a.viewBuilds.Load(),
		CheckpointsWritten: a.checkpointsWritten.Load(),
		RecoveredAgents:    a.recoveredAgents.Load(),
	}
	now := time.Now()
	a.mu.Lock()
	for id, st := range a.agents {
		s.Agents = append(s.Agents, AgentSyncStats{
			ID:        id,
			Seq:       st.seq,
			Gen:       st.gen,
			Snapshots: st.snapshots.Load(),
			Staleness: now.Sub(time.Unix(0, st.lastSyncUnixNano.Load())),
		})
	}
	a.mu.Unlock()
	sort.Slice(s.Agents, func(i, j int) bool { return s.Agents[i].ID < s.Agents[j].ID })
	return s
}

// ExposeMetrics registers the aggregator's observability series on r
// under the instance label: connection/frame/byte counters, snapshot
// commit and merge latency histograms, and a per-agent staleness gauge
// (agents that first sync later are added as they appear). Returns the
// unregister function; Close also unregisters.
func (a *Aggregator) ExposeMetrics(r *obs.Registry, instance string) func() {
	owner := "netagg-aggd:" + instance
	inst := obs.Label{Key: "instance", Value: instance}
	c := func(name, help string, f func() int64, labels ...obs.Label) {
		r.CounterFunc(owner, name, help, f, labels...)
	}
	c("repro_aggd_conns_total", "connections accepted", a.connsOpened.Load, inst)
	r.GaugeFunc(owner, "repro_aggd_conns_open", "connections currently open",
		func() int64 { return a.connsOpened.Load() - a.connsClosed.Load() }, inst)
	c("repro_aggd_frames_total", "frames by direction", a.framesIn.Load, inst, obs.Label{Key: "dir", Value: "in"})
	c("repro_aggd_frames_total", "frames by direction", a.framesOut.Load, inst, obs.Label{Key: "dir", Value: "out"})
	c("repro_aggd_bytes_total", "bytes by direction", a.bytesIn.Load, inst, obs.Label{Key: "dir", Value: "in"})
	c("repro_aggd_bytes_total", "bytes by direction", a.bytesOut.Load, inst, obs.Label{Key: "dir", Value: "out"})
	c("repro_aggd_snapshots_total", "snapshots by outcome", a.snapshotsApplied.Load, inst, obs.Label{Key: "outcome", Value: "applied"})
	c("repro_aggd_snapshots_total", "snapshots by outcome", a.snapshotsStale.Load, inst, obs.Label{Key: "outcome", Value: "stale"})
	c("repro_aggd_snapshots_total", "snapshots by outcome", a.snapshotsRejected.Load, inst, obs.Label{Key: "outcome", Value: "rejected"})
	c("repro_aggd_queries_total", "client queries answered", a.queriesServed.Load, inst)
	c("repro_aggd_query_errors_total", "client queries answered with an error", a.queryErrors.Load, inst)
	c("repro_aggd_handshake_failures_total", "connections refused during handshake", a.handshakeFailures.Load, inst)
	c("repro_aggd_view_builds_total", "merged-view rebuilds", a.viewBuilds.Load, inst)
	c("repro_aggd_checkpoints_total", "state checkpoints written", a.checkpointsWritten.Load, inst)
	c("repro_aggd_recovered_agents_total", "agents restored from a checkpoint at startup", a.recoveredAgents.Load, inst)
	r.HistogramFunc(owner, "repro_aggd_merge_seconds", "merged-view rebuild wall time", a.mergeNanos.Snapshot, inst)
	r.HistogramFunc(owner, "repro_aggd_apply_seconds", "snapshot decode+commit wall time", a.applyNanos.Snapshot, inst)
	var ckptUnreg func()
	if a.store != nil {
		ckptUnreg = a.store.ExposeMetrics(r, instance)
	}

	a.regMu.Lock()
	a.reg, a.regOwner, a.regInstance, a.ckptUnreg = r, owner, instance, ckptUnreg
	a.regMu.Unlock()
	// Gauges for agents that synced before metrics were exposed.
	a.mu.Lock()
	for id, st := range a.agents {
		a.registerAgentGauge(id, st)
	}
	a.mu.Unlock()
	return func() {
		a.regMu.Lock()
		if a.reg == r {
			a.reg = nil
		}
		unregCkpt := a.ckptUnreg
		a.ckptUnreg = nil
		a.regMu.Unlock()
		r.RemoveOwner(owner)
		if unregCkpt != nil {
			unregCkpt()
		}
	}
}

// registerAgentGauge adds the per-agent staleness gauge, once per
// unique agent ID (agentState entries persist across reconnects, so a
// flapping agent cannot duplicate its series). Callers hold a.mu; the
// gauge readback itself only touches the agent's atomic.
func (a *Aggregator) registerAgentGauge(id string, st *agentState) {
	a.regMu.Lock()
	defer a.regMu.Unlock()
	if a.reg == nil {
		return
	}
	a.reg.GaugeFunc(a.regOwner, "repro_aggd_agent_staleness_ms",
		"milliseconds since the agent's last committed snapshot",
		func() int64 {
			last := st.lastSyncUnixNano.Load()
			if last == 0 {
				return -1
			}
			return (time.Now().UnixNano() - last) / int64(time.Millisecond)
		},
		obs.Label{Key: "instance", Value: a.regInstance},
		obs.Label{Key: "agent", Value: id})
}
