package netagg

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	bounded "repro"
)

// SyntheticConfig shapes the load generator's bounded-deletion stream:
// zipf-popular users each touching a small key range, with a bounded
// fraction of updates deleting previously inserted mass — the
// insertion-biased regime the paper's alpha-property formalizes.
type SyntheticConfig struct {
	// Users is the number of simulated sources (default 64); user
	// popularity is zipf(Skew).
	Users int
	// Updates is the total update count to emit (default 100_000).
	Updates int
	// DeleteFrac is the probability an update deletes a previously
	// inserted key instead of inserting (default 0.3; keep below
	// (alpha-1)/(2*alpha) to respect the alpha-property with slack).
	DeleteFrac float64
	// Skew is the zipf s parameter over users, > 1 (default 1.2).
	Skew float64
	// BatchSize is the ingest batch size (default 1024).
	BatchSize int
	// Seed drives the generator; equal seeds replay equal streams.
	Seed int64
	// SyncEvery, when positive, triggers an explicit Agent.Sync after
	// every SyncEvery batches — the load-generator mode used when Run's
	// timer pacing would make benchmark numbers timing-dependent.
	SyncEvery int
}

func (c *SyntheticConfig) fill() {
	if c.Users <= 0 {
		c.Users = 64
	}
	if c.Updates <= 0 {
		c.Updates = 100_000
	}
	if c.DeleteFrac == 0 {
		c.DeleteFrac = 0.3
	}
	if c.Skew <= 1 {
		c.Skew = 1.2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1024
	}
}

// SyntheticReport summarizes one load-generator run.
type SyntheticReport struct {
	Updates       int
	Inserts       int
	Deletes       int
	Elapsed       time.Duration
	UpdatesPerSec float64
}

func (r SyntheticReport) String() string {
	return fmt.Sprintf("updates=%d inserts=%d deletes=%d elapsed=%s rate=%.0f/s",
		r.Updates, r.Inserts, r.Deletes, r.Elapsed, r.UpdatesPerSec)
}

// RunSynthetic drives a deterministic bounded-deletion workload
// through the agent's engine: Users zipf-popular sources, each
// inserting into its own slice of the key universe, deleting recent
// inserts with probability DeleteFrac. Every delete cancels exactly
// one prior insert (strict turnstile, never below zero), and the
// delete fraction bounds the stream's alpha in the paper's sense.
func RunSynthetic(ctx context.Context, a *Agent, sc SyntheticConfig) (SyntheticReport, error) {
	sc.fill()
	n := a.opt.Config.N
	rng := rand.New(rand.NewSource(sc.Seed))
	zipf := rand.NewZipf(rng, sc.Skew, 1, uint64(sc.Users-1))

	// Each user owns a contiguous key slice; popular users revisit few
	// keys (head of the zipf), cold users spread — giving the merged
	// stream genuine heavy hitters.
	keysPerUser := n / uint64(sc.Users)
	if keysPerUser == 0 {
		keysPerUser = 1
	}

	// Ring of recent inserts eligible for deletion: a delete pops a
	// random live entry, guaranteeing the turnstile never goes
	// negative on any coordinate.
	type pending struct{ key uint64 }
	var recent []pending
	const recentCap = 1 << 14

	var report SyntheticReport
	start := time.Now()
	batch := make([]bounded.Update, 0, sc.BatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := a.Ingest(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}

	batches := 0
	for i := 0; i < sc.Updates; i++ {
		if err := context.Cause(ctx); err != nil {
			return report, err
		}
		if len(recent) > 0 && rng.Float64() < sc.DeleteFrac {
			j := rng.Intn(len(recent))
			key := recent[j].key
			recent[j] = recent[len(recent)-1]
			recent = recent[:len(recent)-1]
			batch = append(batch, bounded.Update{Index: key, Delta: -1})
			report.Deletes++
		} else {
			user := zipf.Uint64()
			key := (user*keysPerUser + uint64(zipf.Uint64())%keysPerUser) % n
			batch = append(batch, bounded.Update{Index: key, Delta: 1})
			if len(recent) < recentCap {
				recent = append(recent, pending{key})
			}
			report.Inserts++
		}
		report.Updates++
		if len(batch) == sc.BatchSize {
			if err := flush(); err != nil {
				return report, err
			}
			batches++
			if sc.SyncEvery > 0 && batches%sc.SyncEvery == 0 {
				if err := a.Sync(ctx); err != nil {
					return report, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return report, err
	}
	if sc.SyncEvery > 0 {
		if err := a.Sync(ctx); err != nil {
			return report, err
		}
	}
	report.Elapsed = time.Since(start)
	if s := report.Elapsed.Seconds(); s > 0 {
		report.UpdatesPerSec = float64(report.Updates) / s
	}
	return report, nil
}
