package netagg

import (
	"context"
	"strings"
	"testing"
	"time"

	bounded "repro"
	"repro/engine"
	"repro/internal/netproto"
)

// TestAgentCheckpointResume pins the restart-without-replay path: a
// restarted agent restores its engine from disk, reports it, and
// carries state equal to what the first incarnation checkpointed.
// Unchanged-generation checkpoints write nothing.
func TestAgentCheckpointResume(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{Config: testConfig, Structures: testStructures})
	defer agg.Close()

	dir := t.TempDir()
	opts := AgentOptions{
		ID: "durable", Aggregator: addr, Config: testConfig,
		Engine:        engine.Options{Shards: 2, Structures: testStructures},
		CheckpointDir: dir,
		BackoffMin:    time.Millisecond,
	}
	a1, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a1.RestoredFromCheckpoint() {
		t.Fatal("cold start claims a restored checkpoint")
	}
	if err := a1.Ingest(testStream(10_000, 29)); err != nil {
		t.Fatal(err)
	}
	if err := a1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := a1.Stats().CheckpointsWritten; got != 1 {
		t.Fatalf("CheckpointsWritten = %d, want 1", got)
	}
	// Unchanged generation: a second checkpoint is a no-op.
	if err := a1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := a1.Stats().CheckpointsWritten; got != 1 {
		t.Fatalf("unchanged-generation checkpoint wrote (count %d), want skip", got)
	}
	wantL1, err := a1.Engine().L1()
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}

	a2, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if !a2.RestoredFromCheckpoint() {
		t.Fatal("restart with a checkpoint on disk started cold")
	}
	gotL1, err := a2.Engine().L1()
	if err != nil {
		t.Fatal(err)
	}
	if gotL1 != wantL1 {
		t.Fatalf("restored engine L1 = %v, want %v", gotL1, wantL1)
	}
	// The restored engine syncs like any live agent.
	if err := a2.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	client, err := DialClient(addr, ClientOptions{Config: testConfig})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	netL1, err := client.L1()
	if err != nil {
		t.Fatal(err)
	}
	if netL1 != wantL1 {
		t.Fatalf("aggregator L1 after restored-agent sync = %v, want %v", netL1, wantL1)
	}
}

// TestAggregatorCheckpointValidation pins the recovery admission
// checks: a checkpoint written under one parameterization refuses to
// load into an aggregator with a different config or a narrower
// structure set, and loads exactly under the original one.
func TestAggregatorCheckpointValidation(t *testing.T) {
	dir := t.TempDir()
	opts := AggregatorOptions{
		Config: testConfig, Structures: engine.HeavyHitters,
		CheckpointDir: dir, CheckpointEvery: time.Hour,
	}
	a1, err := NewAggregator(opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := &netproto.Snapshot{Seq: 3, Gen: 5, Sketches: []netproto.SketchBlob{{
		StructureBit: uint32(engine.HeavyHitters),
		Payload:      hhBlob(t, []bounded.Update{{Index: 42, Delta: 9}, {Index: 7, Delta: 2}}),
	}}}
	if err := a1.applySnapshot("site-a", snap); err != nil {
		t.Fatal(err)
	}
	if err := a1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}

	wrongCfg := opts
	wrongCfg.Config.Seed++
	if _, err := NewAggregator(wrongCfg); err == nil || !strings.Contains(err.Error(), "config") {
		t.Fatalf("config-mismatched recovery: err = %v, want config mismatch", err)
	}
	narrower := opts
	narrower.Structures = engine.L1Estimator
	if _, err := NewAggregator(narrower); err == nil || !strings.Contains(err.Error(), "no longer accepts") {
		t.Fatalf("narrower-structures recovery: err = %v, want structures refusal", err)
	}

	a2, err := NewAggregator(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	st := a2.Stats()
	if st.RecoveredAgents != 1 || len(st.Agents) != 1 {
		t.Fatalf("recovered %d agents (%d tracked), want 1", st.RecoveredAgents, len(st.Agents))
	}
	if got := st.Agents[0]; got.ID != "site-a" || got.Seq != 3 || got.Gen != 5 {
		t.Fatalf("recovered watermark %+v, want site-a seq=3 gen=5", got)
	}
	ans := a2.answer(&netproto.Query{Op: netproto.OpEstimate, Keys: []uint64{42, 7, 100}})
	if ans.Err != "" {
		t.Fatal(ans.Err)
	}
	if ans.Values[0] != 9 || ans.Values[1] != 2 || ans.Values[2] != 0 {
		t.Fatalf("recovered estimates = %v, want [9 2 0]", ans.Values)
	}
}
