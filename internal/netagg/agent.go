package netagg

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	bounded "repro"
	"repro/engine"
	"repro/internal/ckpt"
	"repro/internal/netproto"
	"repro/internal/obs"
)

// AgentOptions configures an Agent.
type AgentOptions struct {
	// ID names this site; the aggregator keys committed state by it, so
	// it must be unique per site and stable across restarts. Required.
	ID string
	// Aggregator is the TCP address to ship snapshots to. Required.
	Aggregator string
	// Config is the sketch parameterization; it must equal the
	// aggregator's exactly.
	Config bounded.Config
	// Engine configures the local ingest engine (shard count, structure
	// set, queue depths). Engine.Structures decides what the agent
	// ships.
	Engine engine.Options
	// SyncInterval paces Run's snapshot ticks (default 500ms).
	SyncInterval time.Duration
	// DialTimeout bounds each dial attempt (default 2s).
	DialTimeout time.Duration
	// IOTimeout bounds each frame write and each ACK/WELCOME read
	// (default 5s).
	IOTimeout time.Duration
	// BackoffMin and BackoffMax bound the reconnect backoff: the delay
	// starts at BackoffMin and doubles per consecutive failure up to
	// BackoffMax (defaults 100ms and 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxFrame caps inbound frame payloads (default
	// netproto.DefaultMaxFrame).
	MaxFrame uint32
	// CheckpointDir, when set, makes the agent durable: the engine is
	// checkpointed to this directory and restored on construction, so
	// a restarted agent resumes without replaying its stream.
	CheckpointDir string
	// CheckpointEvery paces checkpoint writes inside Run (default 1s).
	// Ticks where the engine generation did not move write nothing.
	CheckpointEvery time.Duration
	// Logf receives sync-lifecycle diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

func (o *AgentOptions) fill() {
	if o.SyncInterval == 0 {
		o.SyncInterval = 500 * time.Millisecond
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.IOTimeout == 0 {
		o.IOTimeout = 5 * time.Second
	}
	if o.BackoffMin == 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = netproto.DefaultMaxFrame
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = time.Second
	}
	o.Logf = logfOr(o.Logf)
}

// AgentStats is a point-in-time snapshot of the agent's sync counters
// — plain atomics, exact in every build flavor, so tests assert the
// incremental-sync contract (SnapshotsSkipped moves, FramesOut does
// not) directly against them.
type AgentStats struct {
	// SnapshotsSent counts ACKed snapshot pushes; SnapshotsSkipped
	// counts sync ticks that shipped nothing because the engine
	// generation had not moved since the last ACK.
	SnapshotsSent, SnapshotsSkipped int64
	SketchesSent                    int64
	FramesOut, FramesIn             int64
	BytesOut, BytesIn               int64
	Dials, DialFailures             int64
	// Reconnects counts established connections that died and were
	// later re-dialed (Dials - 1 - DialFailures, tracked directly).
	Reconnects   int64
	SyncFailures int64
	AcksReceived int64
	// CheckpointsWritten counts engine checkpoints actually written
	// (unchanged-generation ticks are not counted).
	CheckpointsWritten int64
}

// Agent is one monitored site: a local sharded engine fed by Ingest,
// and a sync loop that ships the engine's merged state to the
// aggregator only when the engine generation moved since the last
// ACKed snapshot.
//
// Concurrency: Ingest is safe from any goroutine (the engine
// serializes). Sync/Run serialize against each other internally;
// connection state is only touched with syncMu held.
type Agent struct {
	opt AgentOptions
	eng *engine.Engine

	// syncMu serializes sync attempts and guards every field below.
	syncMu        sync.Mutex
	conn          net.Conn
	mr            *netproto.MessageReader
	mw            *netproto.MessageWriter
	everConnected bool
	seq           uint64 // last Snapshot.Seq sent (monotonic across conns)
	lastAckedSeq  uint64
	lastAckedGen  int64 // engine generation at last ACK; -1 = none
	backoff       time.Duration
	nextDialAt    time.Time

	closed atomic.Bool

	// Durability (checkpoint.go). ckptMu serializes checkpoint writes;
	// lastCkptGen is the engine generation the newest checkpoint was
	// captured at (guarded by ckptMu).
	store        *ckpt.Store
	ckptMu       sync.Mutex
	lastCkptGen  int64
	restoredCkpt bool

	snapshotsSent, snapshotsSkipped atomic.Int64
	sketchesSent                    atomic.Int64
	framesOut, framesIn             atomic.Int64
	bytesOut, bytesIn               atomic.Int64
	dials, dialFailures             atomic.Int64
	reconnects                      atomic.Int64
	syncFailures                    atomic.Int64
	acksReceived                    atomic.Int64
	checkpointsWritten              atomic.Int64
	syncNanos                       obs.Histogram
}

// NewAgent builds the agent and its local engine. Close releases the
// engine's shard goroutines.
func NewAgent(opt AgentOptions) (*Agent, error) {
	if opt.ID == "" {
		return nil, errors.New("netagg: AgentOptions.ID is required")
	}
	if opt.Aggregator == "" {
		return nil, errors.New("netagg: AgentOptions.Aggregator is required")
	}
	opt.fill()
	eng, err := engine.New(opt.Config, opt.Engine)
	if err != nil {
		return nil, fmt.Errorf("netagg: agent engine: %w", err)
	}
	a := &Agent{opt: opt, eng: eng, lastAckedGen: -1, lastCkptGen: -1}
	if opt.CheckpointDir != "" {
		if err := a.openCheckpoint(); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return a, nil
}

// RestoredFromCheckpoint reports whether NewAgent resumed the engine
// from an on-disk checkpoint rather than starting cold.
func (a *Agent) RestoredFromCheckpoint() bool { return a.restoredCkpt }

// Engine exposes the local engine for direct queries and stats.
func (a *Agent) Engine() *engine.Engine { return a.eng }

// Ingest feeds local stream updates into the site engine.
func (a *Agent) Ingest(batch []bounded.Update) error { return a.eng.Ingest(batch) }

// Run drives the periodic sync loop until ctx is done, then makes
// one final best-effort sync so state ingested just before shutdown
// still reaches the aggregator. Sync errors are logged and retried on
// the next tick (with dial backoff applied underneath); Run only
// returns ctx.Err()'s cause, never a transient sync error.
func (a *Agent) Run(ctx context.Context) error {
	ticker := time.NewTicker(a.opt.SyncInterval)
	defer ticker.Stop()
	var nextCkpt time.Time
	if a.store != nil {
		nextCkpt = time.Now().Add(a.opt.CheckpointEvery)
	}
	for {
		select {
		case <-ctx.Done():
			// Final flush outside the canceled context: bounded by
			// IOTimeout, not by ctx.
			if err := a.Sync(context.Background()); err != nil {
				a.opt.Logf("netagg: agent %s final sync: %v", a.opt.ID, err)
			}
			if a.store != nil {
				if err := a.Checkpoint(); err != nil {
					a.opt.Logf("netagg: agent %s final checkpoint: %v", a.opt.ID, err)
				}
			}
			return context.Cause(ctx)
		case <-ticker.C:
			if err := a.Sync(ctx); err != nil && ctx.Err() == nil {
				a.opt.Logf("netagg: agent %s sync: %v", a.opt.ID, err)
			}
			if a.store != nil && !time.Now().Before(nextCkpt) {
				if err := a.Checkpoint(); err != nil && ctx.Err() == nil {
					a.opt.Logf("netagg: agent %s checkpoint: %v", a.opt.ID, err)
				}
				nextCkpt = time.Now().Add(a.opt.CheckpointEvery)
			}
		}
	}
}

// Sync performs one snapshot cycle now: connect (respecting backoff)
// if needed, skip if the engine generation is unchanged since the last
// ACK, otherwise marshal every enabled structure, push, and await the
// ACK. Safe to call concurrently with Run; attempts serialize.
func (a *Agent) Sync(ctx context.Context) error {
	a.syncMu.Lock()
	defer a.syncMu.Unlock()
	if a.closed.Load() {
		return errors.New("netagg: agent is closed")
	}
	if err := a.ensureConn(ctx); err != nil {
		a.syncFailures.Add(1)
		return err
	}

	// Read the generation BEFORE marshaling: a concurrent Ingest
	// between this load and the Snapshot calls makes the shipped state
	// newer than the recorded gen, which only causes a harmless
	// idempotent resend next tick — never a skipped update.
	gen := a.eng.Generation()
	if int64(gen) == a.lastAckedGen {
		a.snapshotsSkipped.Add(1)
		return nil
	}

	start := obs.Now()
	bits := structureBits(a.eng.Structures())
	blobs := make([]netproto.SketchBlob, 0, len(bits))
	for _, bit := range bits {
		payload, err := a.eng.Snapshot(bit)
		if err != nil {
			a.syncFailures.Add(1)
			return fmt.Errorf("netagg: agent %s marshaling %#x: %w", a.opt.ID, uint32(bit), err)
		}
		blobs = append(blobs, netproto.SketchBlob{StructureBit: uint32(bit), Payload: payload})
	}

	a.seq++
	msg := &netproto.Snapshot{Seq: a.seq, Gen: gen, Sketches: blobs}
	a.conn.SetWriteDeadline(deadline(a.opt.IOTimeout))
	if err := a.mw.Write(msg); err != nil {
		a.syncFailures.Add(1)
		a.dropConnLocked()
		return fmt.Errorf("netagg: agent %s pushing snapshot %d: %w", a.opt.ID, msg.Seq, err)
	}
	a.framesOut.Add(1)

	a.conn.SetReadDeadline(deadline(a.opt.IOTimeout))
	reply, err := a.mr.Next()
	if err != nil {
		a.syncFailures.Add(1)
		a.dropConnLocked()
		return fmt.Errorf("netagg: agent %s awaiting ack %d: %w", a.opt.ID, msg.Seq, err)
	}
	a.framesIn.Add(1)
	switch r := reply.(type) {
	case *netproto.Ack:
		if r.Seq != msg.Seq {
			a.syncFailures.Add(1)
			a.dropConnLocked()
			return fmt.Errorf("netagg: agent %s: ack for seq %d, want %d", a.opt.ID, r.Seq, msg.Seq)
		}
	case *netproto.Error:
		a.syncFailures.Add(1)
		a.dropConnLocked()
		return fmt.Errorf("netagg: agent %s: aggregator refused snapshot: %s", a.opt.ID, r.Msg)
	default:
		a.syncFailures.Add(1)
		a.dropConnLocked()
		return fmt.Errorf("netagg: agent %s: expected ACK, got %s", a.opt.ID, reply.Kind())
	}

	a.lastAckedSeq = msg.Seq
	a.lastAckedGen = int64(gen)
	a.acksReceived.Add(1)
	a.snapshotsSent.Add(1)
	a.sketchesSent.Add(int64(len(blobs)))
	a.syncNanos.ObserveSince(start)
	return nil
}

// ensureConn dials and handshakes when no connection is live,
// respecting the backoff gate. Caller holds syncMu.
func (a *Agent) ensureConn(ctx context.Context) error {
	if a.conn != nil {
		return nil
	}
	if wait := time.Until(a.nextDialAt); wait > 0 {
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-time.After(wait):
		}
	}
	a.dials.Add(1)
	conn, err := net.DialTimeout("tcp", a.opt.Aggregator, a.opt.DialTimeout)
	if err != nil {
		a.dialFailures.Add(1)
		a.bumpBackoffLocked()
		return fmt.Errorf("netagg: agent %s dialing %s: %w", a.opt.ID, a.opt.Aggregator, err)
	}
	cc := &countingConn{Conn: conn, in: &a.bytesIn, out: &a.bytesOut}
	mr := netproto.NewMessageReader(cc, a.opt.MaxFrame)
	mw := netproto.NewMessageWriter(cc)

	hello := &netproto.Hello{
		Role:       netproto.RoleAgent,
		Agent:      a.opt.ID,
		MinVersion: netproto.VersionMin,
		MaxVersion: netproto.VersionMax,
		Config:     configEcho(a.opt.Config),
		Structures: uint32(a.eng.Structures()),
		Shards:     uint32(a.eng.Shards()),
	}
	conn.SetWriteDeadline(deadline(a.opt.IOTimeout))
	err = mw.Write(hello)
	if err == nil {
		a.framesOut.Add(1)
		conn.SetReadDeadline(deadline(a.opt.IOTimeout))
		var reply netproto.Msg
		if reply, err = mr.Next(); err == nil {
			a.framesIn.Add(1)
			switch r := reply.(type) {
			case *netproto.Welcome:
				if r.LastSeq != a.lastAckedSeq {
					// The aggregator's committed state for us is not
					// what we last ACKed — it restarted (LastSeq 0) or
					// lost our tail. Force a full resend and keep our
					// seq counter above whatever it has.
					a.opt.Logf("netagg: agent %s: aggregator holds seq %d, we acked %d; forcing full resend",
						a.opt.ID, r.LastSeq, a.lastAckedSeq)
					a.lastAckedGen = -1
					if r.LastSeq > a.seq {
						a.seq = r.LastSeq
					}
				}
			case *netproto.Error:
				err = fmt.Errorf("netagg: agent %s refused: %s", a.opt.ID, r.Msg)
			default:
				err = fmt.Errorf("netagg: agent %s: expected WELCOME, got %s", a.opt.ID, reply.Kind())
			}
		}
	}
	if err != nil {
		conn.Close()
		a.bumpBackoffLocked()
		return err
	}

	if a.everConnected {
		a.reconnects.Add(1)
	}
	a.everConnected = true
	a.conn, a.mr, a.mw = conn, mr, mw
	a.backoff = 0
	a.nextDialAt = time.Time{}
	return nil
}

// dropConnLocked tears down the live connection after an I/O failure
// and arms the backoff gate. Caller holds syncMu.
func (a *Agent) dropConnLocked() {
	if a.conn != nil {
		a.conn.Close()
		a.conn, a.mr, a.mw = nil, nil, nil
	}
	a.bumpBackoffLocked()
}

// bumpBackoffLocked doubles the reconnect delay (from BackoffMin up to
// BackoffMax) and sets the earliest next dial time. Caller holds
// syncMu.
func (a *Agent) bumpBackoffLocked() {
	if a.backoff == 0 {
		a.backoff = a.opt.BackoffMin
	} else {
		a.backoff *= 2
		if a.backoff > a.opt.BackoffMax {
			a.backoff = a.opt.BackoffMax
		}
	}
	a.nextDialAt = time.Now().Add(a.backoff)
}

// Stats snapshots the agent's sync counters.
func (a *Agent) Stats() AgentStats {
	return AgentStats{
		SnapshotsSent:      a.snapshotsSent.Load(),
		SnapshotsSkipped:   a.snapshotsSkipped.Load(),
		SketchesSent:       a.sketchesSent.Load(),
		FramesOut:          a.framesOut.Load(),
		FramesIn:           a.framesIn.Load(),
		BytesOut:           a.bytesOut.Load(),
		BytesIn:            a.bytesIn.Load(),
		Dials:              a.dials.Load(),
		DialFailures:       a.dialFailures.Load(),
		Reconnects:         a.reconnects.Load(),
		SyncFailures:       a.syncFailures.Load(),
		AcksReceived:       a.acksReceived.Load(),
		CheckpointsWritten: a.checkpointsWritten.Load(),
	}
}

// ExposeMetrics registers the agent's observability series on r under
// the instance label and returns the unregister function. The local
// engine's series are registered separately by the caller if wanted
// (engine.ExposeMetrics).
func (a *Agent) ExposeMetrics(r *obs.Registry, instance string) func() {
	owner := "netagg-agent:" + instance
	inst := obs.Label{Key: "instance", Value: instance}
	c := func(name, help string, f func() int64, labels ...obs.Label) {
		r.CounterFunc(owner, name, help, f, labels...)
	}
	c("repro_agent_snapshots_total", "sync ticks by outcome", a.snapshotsSent.Load, inst, obs.Label{Key: "outcome", Value: "sent"})
	c("repro_agent_snapshots_total", "sync ticks by outcome", a.snapshotsSkipped.Load, inst, obs.Label{Key: "outcome", Value: "skipped"})
	c("repro_agent_sketches_sent_total", "sketch blobs shipped", a.sketchesSent.Load, inst)
	c("repro_agent_frames_total", "frames by direction", a.framesIn.Load, inst, obs.Label{Key: "dir", Value: "in"})
	c("repro_agent_frames_total", "frames by direction", a.framesOut.Load, inst, obs.Label{Key: "dir", Value: "out"})
	c("repro_agent_bytes_total", "bytes by direction", a.bytesIn.Load, inst, obs.Label{Key: "dir", Value: "in"})
	c("repro_agent_bytes_total", "bytes by direction", a.bytesOut.Load, inst, obs.Label{Key: "dir", Value: "out"})
	c("repro_agent_dials_total", "dial attempts", a.dials.Load, inst)
	c("repro_agent_dial_failures_total", "dial attempts that failed", a.dialFailures.Load, inst)
	c("repro_agent_reconnects_total", "re-established connections", a.reconnects.Load, inst)
	c("repro_agent_sync_failures_total", "sync attempts that errored", a.syncFailures.Load, inst)
	c("repro_agent_acks_total", "snapshot ACKs received", a.acksReceived.Load, inst)
	c("repro_agent_checkpoints_total", "engine checkpoints written", a.checkpointsWritten.Load, inst)
	r.HistogramFunc(owner, "repro_agent_sync_seconds", "marshal+push+ack wall time per shipped snapshot", a.syncNanos.Snapshot, inst)
	var unregCkpt func()
	if a.store != nil {
		unregCkpt = a.store.ExposeMetrics(r, instance)
	}
	return func() {
		r.RemoveOwner(owner)
		if unregCkpt != nil {
			unregCkpt()
		}
	}
}

// Close tears down the connection and the local engine, writing a
// final checkpoint first when a checkpoint directory is configured.
// Pending un-ACKed state is not flushed; Run's shutdown path does
// that.
func (a *Agent) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	a.syncMu.Lock()
	if a.conn != nil {
		a.conn.Close()
		a.conn, a.mr, a.mw = nil, nil, nil
	}
	a.syncMu.Unlock()
	if a.store != nil {
		if err := a.Checkpoint(); err != nil {
			a.opt.Logf("netagg: agent %s final checkpoint: %v", a.opt.ID, err)
		}
	}
	return a.eng.Close()
}
