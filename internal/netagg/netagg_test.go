package netagg

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	bounded "repro"
	"repro/engine"
	"repro/internal/gen"
	"repro/internal/netproto"
)

// testConfig is the e2e parameterization: the distributedmerge
// example's numbers, small enough that three engines plus a reference
// run fast under -race.
var testConfig = bounded.Config{N: 1 << 16, Eps: 0.05, Alpha: 4, Seed: 7}

const testStructures = engine.HeavyHitters | engine.L1Estimator | engine.SupportSampler

const numSites = 3

// siteOf partitions the key universe across sites. Partitioning by
// key keeps every site's substream a valid turnstile stream on its
// own (a delete lands on the site that saw the insert).
func siteOf(key uint64) int { return int(key % numSites) }

// testStream builds the repo's canonical bounded-deletion workload —
// zipf-skewed inserts with interleaved alpha-bounded deletions, the
// family the sketch-level merge tests pin their exact regime on.
func testStream(items int, seed int64) []bounded.Update {
	s := gen.BoundedDeletion(gen.Config{
		N: testConfig.N, Items: items, Alpha: testConfig.Alpha,
		Zipf: 1.5, Shuffle: true, Seed: seed,
	})
	return s.Updates
}

// startAggregator serves an aggregator on a fresh loopback port and
// returns it with its address. Closing is the caller's job.
func startAggregator(t *testing.T, opt AggregatorOptions) (*Aggregator, string) {
	t.Helper()
	agg, err := NewAggregator(opt)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go agg.Serve(ln)
	return agg, ln.Addr().String()
}

func newTestAgent(t *testing.T, id, addr string) *Agent {
	t.Helper()
	a, err := NewAgent(AgentOptions{
		ID:         id,
		Aggregator: addr,
		Config:     testConfig,
		Engine:     engine.Options{Shards: 2, Structures: testStructures},
		BackoffMin: time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		IOTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// sortedCopy returns keys sorted ascending (set comparison helper).
func sortedCopy(keys []uint64) []uint64 {
	out := append([]uint64(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU64s(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refSketch pulls one structure's canonical merged full-stream state
// out of the reference engine, through the same Snapshot surface the
// agents ship over the wire.
func refSketch(t *testing.T, ref *engine.Engine, bit engine.Structures) bounded.Sketch {
	t.Helper()
	b, err := ref.Snapshot(bit)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := bounded.UnmarshalSketch(b)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// verifyAgainstReference asserts the aggregator's answers over the
// client are bit-identical to the whole-stream reference engine's
// merged state: point estimates, heavy-hitter set, L1 norm, and
// recovered support. The reference is read through Snapshot — the
// engine's canonical merged full-stream state, the exact thing the
// aggregation tier distributes. (The engine's routed point-query fast
// path is deliberately NOT the baseline: it answers from shard-local
// sketches, a slightly different — tighter-collision — estimator than
// the merged sketch, so it can legitimately differ by a collision's
// worth of noise.)
func verifyAgainstReference(t *testing.T, c *Client, ref *engine.Engine, probeKeys []uint64) {
	t.Helper()
	refHH := refSketch(t, ref, engine.HeavyHitters).(*bounded.HeavyHitters)

	wantVals := refHH.EstimateBatch(probeKeys)
	gotVals, err := c.Estimate(probeKeys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probeKeys {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("estimate(%d) = %v over the network, %v from the reference engine",
				probeKeys[i], gotVals[i], wantVals[i])
		}
	}

	wantHH := refHH.HeavyHitters()
	gotHH, err := c.HeavyHitters()
	if err != nil {
		t.Fatal(err)
	}
	if !equalU64s(sortedCopy(gotHH), sortedCopy(wantHH)) {
		t.Fatalf("heavy hitters = %v over the network, %v from the reference engine", gotHH, wantHH)
	}

	wantL1 := refSketch(t, ref, engine.L1Estimator).(*bounded.L1Estimator).Estimate()
	gotL1, err := c.L1()
	if err != nil {
		t.Fatal(err)
	}
	if gotL1 != wantL1 {
		t.Fatalf("L1 = %v over the network, %v from the reference engine", gotL1, wantL1)
	}

	wantSup := refSketch(t, ref, engine.SupportSampler).(*bounded.SupportSampler).Recover()
	gotSup, err := c.Support()
	if err != nil {
		t.Fatal(err)
	}
	if !equalU64s(sortedCopy(gotSup), sortedCopy(wantSup)) {
		t.Fatalf("support = %v over the network, %v from the reference engine", gotSup, wantSup)
	}
}

// TestEndToEndDifferential is the capstone: three agents over real
// loopback sockets on disjoint key slices, one aggregator, and a
// reference engine fed the whole stream. The aggregator's answers
// must be bit-identical to the reference at every checkpoint —
// including after the aggregator restarts mid-run and every agent
// reconnects and resends — and sync ticks with an unchanged engine
// generation must ship no frames.
func TestEndToEndDifferential(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{Config: testConfig, Structures: testStructures})
	defer agg.Close()

	agents := make([]*Agent, numSites)
	for i := range agents {
		agents[i] = newTestAgent(t, fmt.Sprintf("site-%d", i), addr)
	}

	ref, err := engine.New(testConfig, engine.Options{Shards: 2, Structures: testStructures})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	stream := testStream(60_000, 11)
	phase1, phase2, phase3 := stream[:30_000], stream[30_000:50_000], stream[50_000:]
	probeKeys := []uint64{0, 1, 2, 3, 7, 31, 100, 4096, testConfig.N - 1}

	ingest := func(updates []bounded.Update) {
		bySite := make([][]bounded.Update, numSites)
		for _, u := range updates {
			s := siteOf(u.Index)
			bySite[s] = append(bySite[s], u)
		}
		for i, a := range agents {
			if err := a.Ingest(bySite[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := ref.Ingest(updates); err != nil {
			t.Fatal(err)
		}
	}
	syncAll := func() {
		for _, a := range agents {
			if err := a.Sync(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: ingest, sync, verify.
	ingest(phase1)
	syncAll()
	client, err := DialClient(addr, ClientOptions{Config: testConfig})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	verifyAgainstReference(t, client, ref, probeKeys)

	// Incremental-sync contract: nothing changed since the ACK, so a
	// sync tick must ship no frame at all — asserted against the plain
	// atomic counters on both ends, which are exact in every build
	// flavor (including -tags noobs).
	aggBefore := agg.Stats()
	for _, a := range agents {
		before := a.Stats()
		if err := a.Sync(context.Background()); err != nil {
			t.Fatal(err)
		}
		after := a.Stats()
		if after.SnapshotsSkipped != before.SnapshotsSkipped+1 {
			t.Fatalf("idle sync: skipped %d -> %d, want +1", before.SnapshotsSkipped, after.SnapshotsSkipped)
		}
		if after.FramesOut != before.FramesOut {
			t.Fatalf("idle sync shipped %d frames, want 0", after.FramesOut-before.FramesOut)
		}
		if after.SnapshotsSent != before.SnapshotsSent {
			t.Fatal("idle sync counted as a sent snapshot")
		}
	}
	if got := agg.Stats(); got.SnapshotsApplied != aggBefore.SnapshotsApplied || got.FramesIn != aggBefore.FramesIn {
		t.Fatalf("idle syncs reached the aggregator: applied %d -> %d, framesIn %d -> %d",
			aggBefore.SnapshotsApplied, got.SnapshotsApplied, aggBefore.FramesIn, got.FramesIn)
	}

	// The merged view is cached between commits: repeated queries must
	// not rebuild it.
	builds := agg.Stats().ViewBuilds
	if _, err := client.Estimate(probeKeys); err != nil {
		t.Fatal(err)
	}
	if _, err := client.HeavyHitters(); err != nil {
		t.Fatal(err)
	}
	if got := agg.Stats().ViewBuilds; got != builds {
		t.Fatalf("queries with no new commits rebuilt the view: %d -> %d", builds, got)
	}

	// Mid-run aggregator restart: every connection dies, agents must
	// reconnect, learn via WELCOME.LastSeq=0 that their state is gone,
	// and resend in full even though their generations are unchanged.
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	agg2, err := NewAggregator(AggregatorOptions{Config: testConfig, Structures: testStructures})
	if err != nil {
		t.Fatal(err)
	}
	defer agg2.Close()
	go agg2.Serve(ln)

	ingest(phase2)
	for _, a := range agents {
		// The first sync attempt may fail on the dead connection; the
		// retry must reconnect and push.
		if err := a.Sync(context.Background()); err != nil {
			if err = a.Sync(context.Background()); err != nil {
				t.Fatalf("sync after aggregator restart: %v", err)
			}
		}
	}
	for _, a := range agents {
		if st := a.Stats(); st.Reconnects == 0 {
			t.Fatal("agent never recorded a reconnect across the aggregator restart")
		}
	}

	client2, err := DialClient(addr, ClientOptions{Config: testConfig})
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	verifyAgainstReference(t, client2, ref, probeKeys)

	st := agg2.Stats()
	if len(st.Agents) != numSites {
		t.Fatalf("restarted aggregator tracks %d agents, want %d", len(st.Agents), numSites)
	}
	for _, as := range st.Agents {
		if as.Snapshots == 0 || as.Seq == 0 {
			t.Fatalf("agent %s: no committed snapshot after restart (%+v)", as.ID, as)
		}
	}

	// Phase 3: durable restart. A third aggregator run gets a
	// checkpoint directory; after it absorbs the agents' state and
	// checkpoints, a fourth run restarted from that directory must
	// answer bit-identically from disk BEFORE any agent syncs, and a
	// reconnecting agent whose state is unchanged must ship only its
	// HELLO — no snapshot resend storm.
	ckptDir := t.TempDir()
	if err := agg2.Close(); err != nil {
		t.Fatal(err)
	}
	ln3, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	agg3, err := NewAggregator(AggregatorOptions{
		Config: testConfig, Structures: testStructures,
		CheckpointDir: ckptDir, CheckpointEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg3.Close()
	go agg3.Serve(ln3)
	if got := agg3.Stats().RecoveredAgents; got != 0 {
		t.Fatalf("cold checkpoint dir recovered %d agents, want 0", got)
	}

	ingest(phase3)
	for _, a := range agents {
		if err := a.Sync(context.Background()); err != nil {
			if err = a.Sync(context.Background()); err != nil {
				t.Fatalf("sync after second aggregator restart: %v", err)
			}
		}
	}
	client3, err := DialClient(addr, ClientOptions{Config: testConfig})
	if err != nil {
		t.Fatal(err)
	}
	defer client3.Close()
	verifyAgainstReference(t, client3, ref, probeKeys)

	if err := agg3.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := agg3.Stats().CheckpointsWritten; got == 0 {
		t.Fatal("explicit Checkpoint wrote nothing")
	}
	preRestart := agg3.Stats()
	if err := agg3.Close(); err != nil {
		t.Fatal(err)
	}

	ln4, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	agg4, err := NewAggregator(AggregatorOptions{
		Config: testConfig, Structures: testStructures,
		CheckpointDir: ckptDir, CheckpointEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg4.Close()
	go agg4.Serve(ln4)
	if got := agg4.Stats().RecoveredAgents; got != numSites {
		t.Fatalf("restarted aggregator recovered %d agents from disk, want %d", got, numSites)
	}

	// Answers come straight from the recovered table: bit-identical to
	// the reference with zero snapshots applied.
	client4, err := DialClient(addr, ClientOptions{Config: testConfig})
	if err != nil {
		t.Fatal(err)
	}
	defer client4.Close()
	verifyAgainstReference(t, client4, ref, probeKeys)
	if got := agg4.Stats().SnapshotsApplied; got != 0 {
		t.Fatalf("recovered aggregator needed %d snapshots before answering, want 0", got)
	}

	// No resend storm: drop each agent's dead connection so the next
	// sync re-handshakes. The recovered WELCOME.LastSeq matches the
	// agent's own watermark, so an unchanged agent ships exactly one
	// frame (HELLO) and no snapshot.
	for _, a := range agents {
		a.syncMu.Lock()
		if a.conn != nil {
			a.conn.Close()
			a.conn, a.mr, a.mw = nil, nil, nil
		}
		a.syncMu.Unlock()

		before := a.Stats()
		if err := a.Sync(context.Background()); err != nil {
			t.Fatalf("sync after checkpointed restart: %v", err)
		}
		after := a.Stats()
		if after.FramesOut != before.FramesOut+1 {
			t.Fatalf("reconnect to recovered aggregator shipped %d frames, want 1 (HELLO only)",
				after.FramesOut-before.FramesOut)
		}
		if after.SnapshotsSent != before.SnapshotsSent {
			t.Fatalf("reconnect to recovered aggregator resent %d snapshots, want 0",
				after.SnapshotsSent-before.SnapshotsSent)
		}
		if after.SnapshotsSkipped != before.SnapshotsSkipped+1 {
			t.Fatalf("reconnect sync: skipped %d -> %d, want +1", before.SnapshotsSkipped, after.SnapshotsSkipped)
		}
	}
	st4 := agg4.Stats()
	if st4.SnapshotsApplied != 0 {
		t.Fatalf("recovered aggregator applied %d snapshots across idle reconnects, want 0", st4.SnapshotsApplied)
	}
	if len(st4.Agents) != numSites {
		t.Fatalf("recovered aggregator tracks %d agents, want %d", len(st4.Agents), numSites)
	}
	for i, as := range st4.Agents {
		if as.Seq != preRestart.Agents[i].Seq || as.Gen != preRestart.Agents[i].Gen {
			t.Fatalf("agent %s watermarks changed across restart: %+v vs %+v", as.ID, as, preRestart.Agents[i])
		}
	}
}

// TestDialBackoffAndRecovery pins the reconnect policy: consecutive
// dial failures double the delay up to BackoffMax, and a successful
// connect resets it.
func TestDialBackoffAndRecovery(t *testing.T) {
	// Reserve a port with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	a := newTestAgent(t, "flaky", addr)
	if err := a.Ingest([]bounded.Update{{Index: 1, Delta: 1}}); err != nil {
		t.Fatal(err)
	}

	for i := 1; i <= 3; i++ {
		if err := a.Sync(context.Background()); err == nil {
			t.Fatal("sync succeeded with no aggregator listening")
		}
		st := a.Stats()
		if st.DialFailures != int64(i) {
			t.Fatalf("after %d failed syncs: DialFailures = %d", i, st.DialFailures)
		}
	}
	a.syncMu.Lock()
	backoff := a.backoff
	a.syncMu.Unlock()
	if want := 4 * time.Millisecond; backoff != want { // 1ms doubled twice
		t.Fatalf("backoff after 3 failures = %v, want %v", backoff, want)
	}

	// A canceled context must abort the backoff wait, not sleep it out.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.Sync(ctx); err == nil {
		t.Fatal("sync with canceled context returned nil")
	}

	agg, err := NewAggregator(AggregatorOptions{Config: testConfig, Structures: testStructures})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go agg.Serve(ln2)

	if err := a.Sync(context.Background()); err != nil {
		t.Fatalf("sync after aggregator came up: %v", err)
	}
	st := a.Stats()
	if st.SnapshotsSent != 1 {
		t.Fatalf("SnapshotsSent = %d, want 1", st.SnapshotsSent)
	}
	a.syncMu.Lock()
	backoff = a.backoff
	a.syncMu.Unlock()
	if backoff != 0 {
		t.Fatalf("backoff not reset after successful connect: %v", backoff)
	}
}

// rawAgentConn handshakes a raw TCP connection as an agent so tests
// can inject precise byte sequences.
func rawAgentConn(t *testing.T, addr, id string) (net.Conn, *netproto.MessageReader, *netproto.MessageWriter) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	mr := netproto.NewMessageReader(conn, 0)
	mw := netproto.NewMessageWriter(conn)
	if err := mw.Write(&netproto.Hello{
		Role: netproto.RoleAgent, Agent: id,
		MinVersion: netproto.VersionMin, MaxVersion: netproto.VersionMax,
		Config:     configEcho(testConfig),
		Structures: uint32(engine.HeavyHitters),
	}); err != nil {
		t.Fatal(err)
	}
	reply, err := mr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.(*netproto.Welcome); !ok {
		t.Fatalf("handshake reply = %T, want WELCOME", reply)
	}
	return conn, mr, mw
}

// hhBlob marshals a heavy-hitters sketch holding the given updates.
func hhBlob(t *testing.T, updates []bounded.Update) []byte {
	t.Helper()
	hh, err := bounded.NewHeavyHitters(testConfig)
	if err != nil {
		t.Fatal(err)
	}
	hh.UpdateBatch(updates)
	b, err := hh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPartialSnapshotNoCorruption pins the atomic-commit guarantee: a
// connection that dies mid-frame, or ships a snapshot with a malformed
// blob, changes nothing — queries keep answering from the last
// committed state.
func TestPartialSnapshotNoCorruption(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{
		Config: testConfig, Structures: engine.HeavyHitters,
		IOTimeout: 2 * time.Second,
	})
	defer agg.Close()

	// Commit one good snapshot.
	conn, mr, mw := rawAgentConn(t, addr, "raw")
	good := &netproto.Snapshot{Seq: 1, Gen: 1, Sketches: []netproto.SketchBlob{{
		StructureBit: uint32(engine.HeavyHitters),
		Payload:      hhBlob(t, []bounded.Update{{Index: 42, Delta: 9}}),
	}}}
	if err := mw.Write(good); err != nil {
		t.Fatal(err)
	}
	if reply, err := mr.Next(); err != nil {
		t.Fatal(err)
	} else if ack, ok := reply.(*netproto.Ack); !ok || ack.Seq != 1 {
		t.Fatalf("reply = %#v, want ACK{1}", reply)
	}

	client, err := DialClient(addr, ClientOptions{Config: testConfig})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	baseline, err := client.Estimate([]uint64{42})
	if err != nil {
		t.Fatal(err)
	}
	if baseline[0] != 9 {
		t.Fatalf("estimate(42) = %v, want 9", baseline[0])
	}

	// Disconnect mid-frame: a full length prefix, half the payload.
	payload := netproto.Encode(&netproto.Snapshot{Seq: 2, Gen: 2, Sketches: []netproto.SketchBlob{{
		StructureBit: uint32(engine.HeavyHitters),
		Payload:      hhBlob(t, []bounded.Update{{Index: 42, Delta: 1000}}),
	}}})
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload[:len(payload)/2]...)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A second connection ships a snapshot whose blob does not decode.
	_, mr2, mw2 := rawAgentConn(t, addr, "raw2")
	bad := &netproto.Snapshot{Seq: 1, Gen: 1, Sketches: []netproto.SketchBlob{{
		StructureBit: uint32(engine.HeavyHitters),
		Payload:      []byte("BD not a sketch"),
	}}}
	if err := mw2.Write(bad); err != nil {
		t.Fatal(err)
	}
	if reply, err := mr2.Next(); err != nil {
		t.Fatal(err)
	} else if _, ok := reply.(*netproto.Error); !ok {
		t.Fatalf("malformed snapshot answered %T, want ERROR", reply)
	}

	// Give the handler a moment to observe the torn connection.
	deadlineAt := time.Now().Add(2 * time.Second)
	for {
		st := agg.Stats()
		if st.ConnsClosed >= 2 || time.Now().After(deadlineAt) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := agg.Stats()
	if st.SnapshotsApplied != 1 {
		t.Fatalf("SnapshotsApplied = %d, want 1 (neither torn nor malformed commit)", st.SnapshotsApplied)
	}
	if st.SnapshotsRejected != 1 {
		t.Fatalf("SnapshotsRejected = %d, want 1", st.SnapshotsRejected)
	}
	after, err := client.Estimate([]uint64{42})
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != baseline[0] {
		t.Fatalf("estimate(42) moved %v -> %v across torn/malformed snapshots", baseline[0], after[0])
	}
}

// TestHandshakeRefusals pins the admission checks: wrong config, a
// structure set the aggregator does not accept, a first frame that is
// not HELLO, and a disjoint version range are all ERROR + close.
func TestHandshakeRefusals(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{
		Config: testConfig, Structures: engine.HeavyHitters,
		IOTimeout: 2 * time.Second,
	})
	defer agg.Close()

	expectRefusal := func(name string, first netproto.Msg) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		mr := netproto.NewMessageReader(conn, 0)
		if err := netproto.WriteMessage(conn, first); err != nil {
			t.Fatal(err)
		}
		reply, err := mr.Next()
		if err != nil {
			t.Fatalf("%s: reading refusal: %v", name, err)
		}
		if _, ok := reply.(*netproto.Error); !ok {
			t.Fatalf("%s: reply = %T, want ERROR", name, reply)
		}
		if _, err := mr.Next(); err == nil {
			t.Fatalf("%s: connection stayed open after refusal", name)
		}
	}

	wrongSeed := configEcho(testConfig)
	wrongSeed.Seed++
	expectRefusal("config mismatch", &netproto.Hello{
		Role: netproto.RoleAgent, Agent: "x",
		MinVersion: 1, MaxVersion: 1, Config: wrongSeed,
		Structures: uint32(engine.HeavyHitters),
	})
	expectRefusal("structures not accepted", &netproto.Hello{
		Role: netproto.RoleAgent, Agent: "x",
		MinVersion: 1, MaxVersion: 1, Config: configEcho(testConfig),
		Structures: uint32(engine.HeavyHitters | engine.SyncSketch),
	})
	expectRefusal("empty agent id", &netproto.Hello{
		Role: netproto.RoleAgent, MinVersion: 1, MaxVersion: 1,
		Config: configEcho(testConfig), Structures: uint32(engine.HeavyHitters),
	})
	expectRefusal("version range disjoint", &netproto.Hello{
		Role: netproto.RoleAgent, Agent: "x",
		MinVersion: 200, MaxVersion: 210, Config: configEcho(testConfig),
		Structures: uint32(engine.HeavyHitters),
	})
	expectRefusal("first frame not HELLO", &netproto.Ack{Seq: 1})

	// A client pushing a SNAPSHOT is a role violation.
	client, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cmr := netproto.NewMessageReader(client, 0)
	if err := netproto.WriteMessage(client, &netproto.Hello{
		Role: netproto.RoleClient, MinVersion: 1, MaxVersion: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if reply, err := cmr.Next(); err != nil {
		t.Fatal(err)
	} else if _, ok := reply.(*netproto.Welcome); !ok {
		t.Fatalf("client handshake reply = %T, want WELCOME", reply)
	}
	if err := netproto.WriteMessage(client, &netproto.Snapshot{Seq: 1, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	if reply, err := cmr.Next(); err != nil {
		t.Fatal(err)
	} else if _, ok := reply.(*netproto.Error); !ok {
		t.Fatalf("client SNAPSHOT answered %T, want ERROR", reply)
	}

	if st := agg.Stats(); st.HandshakeFailures < 5 {
		t.Fatalf("HandshakeFailures = %d, want >= 5", st.HandshakeFailures)
	}
}

// TestRunLoop exercises the timer-driven path end to end: Run ships
// ingested state without explicit Sync calls, and cancellation flushes
// the tail before returning.
func TestRunLoop(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{Config: testConfig, Structures: testStructures})
	defer agg.Close()

	a, err := NewAgent(AgentOptions{
		ID: "looper", Aggregator: addr, Config: testConfig,
		Engine:       engine.Options{Shards: 1, Structures: testStructures},
		SyncInterval: 5 * time.Millisecond,
		BackoffMin:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Run(ctx) }()

	if err := a.Ingest([]bounded.Update{{Index: 5, Delta: 7}}); err != nil {
		t.Fatal(err)
	}
	client, err := DialClient(addr, ClientOptions{Config: testConfig})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitUntil := time.Now().Add(5 * time.Second)
	for {
		vals, err := client.Estimate([]uint64{5})
		if err != nil {
			t.Fatal(err)
		}
		if vals[0] == 7 {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatalf("Run never shipped the snapshot; estimate(5) = %v", vals[0])
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Ingest just before cancel: the shutdown flush must deliver it.
	if err := a.Ingest([]bounded.Update{{Index: 6, Delta: 3}}); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	vals, err := client.Estimate([]uint64{6})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 3 {
		t.Fatalf("estimate(6) = %v after shutdown flush, want 3", vals[0])
	}
}

// TestSyntheticDeterminism pins the load generator: equal seeds
// produce equal streams (equal engine state), and the delete fraction
// respects the configured bound.
func TestSyntheticDeterminism(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{Config: testConfig, Structures: testStructures})
	defer agg.Close()

	run := func(id string) (*Agent, SyntheticReport) {
		a := newTestAgent(t, id, addr)
		rep, err := RunSynthetic(context.Background(), a, SyntheticConfig{
			Updates: 20_000, Seed: 3, SyncEvery: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a, rep
	}
	a1, rep1 := run("gen-1")
	a2, rep2 := run("gen-2")

	if rep1.Inserts != rep2.Inserts || rep1.Deletes != rep2.Deletes {
		t.Fatalf("same seed, different streams: %+v vs %+v", rep1, rep2)
	}
	if rep1.Deletes == 0 {
		t.Fatal("synthetic stream generated no deletes")
	}
	if frac := float64(rep1.Deletes) / float64(rep1.Updates); frac > 0.35 {
		t.Fatalf("delete fraction %.2f exceeds the bounded-deletion budget", frac)
	}
	if rep1.Updates != 20_000 {
		t.Fatalf("updates = %d, want 20000", rep1.Updates)
	}

	l1a, err := a1.Engine().L1()
	if err != nil {
		t.Fatal(err)
	}
	l1b, err := a2.Engine().L1()
	if err != nil {
		t.Fatal(err)
	}
	if l1a != l1b {
		t.Fatalf("same seed, different engine state: L1 %v vs %v", l1a, l1b)
	}
	if st := a1.Stats(); st.SnapshotsSent == 0 {
		t.Fatal("SyncEvery never shipped a snapshot")
	}
}
