package netagg

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	bounded "repro"
	"repro/internal/netproto"
)

// ClientOptions configures a query Client.
type ClientOptions struct {
	// DialTimeout bounds the dial (default 2s); IOTimeout bounds each
	// query round trip (default 5s).
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// MaxFrame caps inbound frame payloads (default
	// netproto.DefaultMaxFrame).
	MaxFrame uint32
	// Config is echoed in HELLO for diagnostics; clients carry no
	// sketch state so it is informational.
	Config bounded.Config
}

func (o *ClientOptions) fill() {
	if o.DialTimeout == 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.IOTimeout == 0 {
		o.IOTimeout = 5 * time.Second
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = netproto.DefaultMaxFrame
	}
}

// Client queries an aggregator's merged global state over one TCP
// connection. Methods serialize internally; a failed round trip leaves
// the connection unusable (errors latch in the reader) — dial a new
// client.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	mr      *netproto.MessageReader
	mw      *netproto.MessageWriter
	ioTO    time.Duration
	nextID  uint64
	version uint8
}

// DialClient connects and handshakes as RoleClient.
func DialClient(addr string, opt ClientOptions) (*Client, error) {
	opt.fill()
	conn, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("netagg: client dialing %s: %w", addr, err)
	}
	mr := netproto.NewMessageReader(conn, opt.MaxFrame)
	mw := netproto.NewMessageWriter(conn)
	conn.SetWriteDeadline(deadline(opt.IOTimeout))
	if err := mw.Write(&netproto.Hello{
		Role:       netproto.RoleClient,
		MinVersion: netproto.VersionMin,
		MaxVersion: netproto.VersionMax,
		Config:     configEcho(opt.Config),
	}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netagg: client hello: %w", err)
	}
	conn.SetReadDeadline(deadline(opt.IOTimeout))
	reply, err := mr.Next()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("netagg: client awaiting welcome: %w", err)
	}
	welcome, ok := reply.(*netproto.Welcome)
	if !ok {
		conn.Close()
		if e, isErr := reply.(*netproto.Error); isErr {
			return nil, fmt.Errorf("netagg: client refused: %s", e.Msg)
		}
		return nil, fmt.Errorf("netagg: client expected WELCOME, got %s", reply.Kind())
	}
	return &Client{conn: conn, mr: mr, mw: mw, ioTO: opt.IOTimeout, version: welcome.Version}, nil
}

// Version reports the negotiated protocol version.
func (c *Client) Version() uint8 { return c.version }

// do runs one QUERY/ANSWER round trip.
func (c *Client) do(op netproto.QueryOp, keys []uint64) (*netproto.Answer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, errors.New("netagg: client is closed")
	}
	c.nextID++
	q := &netproto.Query{ID: c.nextID, Op: op, Keys: keys}
	c.conn.SetWriteDeadline(deadline(c.ioTO))
	if err := c.mw.Write(q); err != nil {
		return nil, fmt.Errorf("netagg: client query: %w", err)
	}
	c.conn.SetReadDeadline(deadline(c.ioTO))
	reply, err := c.mr.Next()
	if err != nil {
		return nil, fmt.Errorf("netagg: client awaiting answer: %w", err)
	}
	ans, ok := reply.(*netproto.Answer)
	if !ok {
		if e, isErr := reply.(*netproto.Error); isErr {
			return nil, fmt.Errorf("netagg: aggregator error: %s", e.Msg)
		}
		return nil, fmt.Errorf("netagg: client expected ANSWER, got %s", reply.Kind())
	}
	if ans.ID != q.ID {
		return nil, fmt.Errorf("netagg: answer id %d, want %d", ans.ID, q.ID)
	}
	if ans.Err != "" {
		return nil, errors.New(ans.Err)
	}
	return ans, nil
}

// Estimate returns the merged point estimate for every key, in input
// order.
func (c *Client) Estimate(keys []uint64) ([]float64, error) {
	ans, err := c.do(netproto.OpEstimate, keys)
	if err != nil {
		return nil, err
	}
	if len(ans.Values) != len(keys) {
		return nil, fmt.Errorf("netagg: estimate answered %d values for %d keys", len(ans.Values), len(keys))
	}
	return ans.Values, nil
}

// HeavyHitters returns the merged eps-heavy coordinates.
func (c *Client) HeavyHitters() ([]uint64, error) {
	ans, err := c.do(netproto.OpHeavyHitters, nil)
	if err != nil {
		return nil, err
	}
	return ans.Keys, nil
}

// L1 returns the merged L1-norm estimate.
func (c *Client) L1() (float64, error) {
	ans, err := c.do(netproto.OpL1, nil)
	if err != nil {
		return 0, err
	}
	if len(ans.Values) != 1 {
		return 0, fmt.Errorf("netagg: l1 answered %d values, want 1", len(ans.Values))
	}
	return ans.Values[0], nil
}

// Support returns the merged recovered support set.
func (c *Client) Support() ([]uint64, error) {
	ans, err := c.do(netproto.OpSupport, nil)
	if err != nil {
		return nil, err
	}
	return ans.Keys, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.mr, c.mw = nil, nil, nil
	return err
}
