package netagg

import (
	"errors"
	"fmt"
	"sort"
	"time"

	bounded "repro"
	"repro/engine"
	"repro/internal/ckpt"
	"repro/internal/wire"
)

// Aggregator checkpoint state format ("AG"): the aggregator's entire
// per-agent table — each agent's latest committed sketch blobs plus the
// seq/gen watermarks — serialized deterministically (agents sorted by
// ID, blobs by ascending structure bit). Restoring it on restart is
// what lets the aggregator answer queries from disk immediately AND
// hand every reconnecting agent its true LastSeq, so a live agent sees
// its own watermark in the WELCOME and keeps syncing incrementally
// instead of force-resending its full state.
const (
	aggStateMagic   = "AG"
	aggStateVersion = 1
)

// aggAgentRow is one agent's state captured under a.mu for
// checkpointing. Sketch pointers are safe to marshal outside the lock:
// commits replace pointers, they never mutate a stored sketch.
type aggAgentRow struct {
	id           string
	seq, gen     uint64
	lastSyncNano int64
	snapshots    int64
	sketches     map[engine.Structures]bounded.Sketch
}

// marshalAggState serializes captured rows into an "AG" payload.
func marshalAggState(cfg bounded.Config, accept engine.Structures, rows []aggAgentRow) ([]byte, error) {
	w := wire.NewWriter(aggStateMagic, aggStateVersion)
	w.U64(cfg.N)
	w.F64(cfg.Eps)
	w.F64(cfg.Alpha)
	w.I64(cfg.Seed)
	w.U32(uint32(accept))
	w.U32(uint32(len(rows)))
	for _, row := range rows {
		w.Bytes32([]byte(row.id))
		w.U64(row.seq)
		w.U64(row.gen)
		w.I64(row.lastSyncNano)
		w.I64(row.snapshots)
		bits := make([]engine.Structures, 0, len(row.sketches))
		for bit := range row.sketches {
			bits = append(bits, bit)
		}
		sort.Slice(bits, func(i, j int) bool { return bits[i] < bits[j] })
		w.U32(uint32(len(bits)))
		for _, bit := range bits {
			payload, err := row.sketches[bit].MarshalBinary()
			if err != nil {
				return nil, fmt.Errorf("netagg: checkpoint marshaling agent %q bit %#x: %w", row.id, uint32(bit), err)
			}
			w.U32(uint32(bit))
			w.Bytes32(payload)
		}
	}
	return w.Bytes(), nil
}

// unmarshalAggState decodes an "AG" payload, validating every blob
// against cfg and the accept mask before returning. All-or-nothing: a
// payload with any malformed or mismatched blob restores no agents.
func unmarshalAggState(data []byte, cfg bounded.Config, accept engine.Structures) ([]aggAgentRow, error) {
	r, version, err := wire.NewReader(data, aggStateMagic)
	if err != nil {
		return nil, fmt.Errorf("netagg: checkpoint state: %w", err)
	}
	if version != aggStateVersion {
		return nil, fmt.Errorf("netagg: checkpoint state version %d, want %d", version, aggStateVersion)
	}
	fileCfg := bounded.Config{N: r.U64(), Eps: r.F64(), Alpha: r.F64(), Seed: r.I64()}
	fileAccept := engine.Structures(r.U32())
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("netagg: checkpoint state: %w", err)
	}
	if fileCfg != cfg {
		return nil, fmt.Errorf("netagg: checkpoint config %+v does not match aggregator config %+v", fileCfg, cfg)
	}
	if extra := fileAccept &^ accept; extra != 0 {
		return nil, fmt.Errorf("netagg: checkpoint holds structures %#x the aggregator no longer accepts (accepts %#x)",
			uint32(fileAccept), uint32(accept))
	}
	// Each agent row costs at least 40 encoded bytes; a count that
	// cannot fit in the remaining payload is forged.
	if n < 0 || n*40 > r.Remaining()+40 {
		return nil, fmt.Errorf("netagg: checkpoint claims %d agents in %d bytes", n, r.Remaining())
	}
	rows := make([]aggAgentRow, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		row := aggAgentRow{
			id:           string(r.Bytes32()),
			seq:          r.U64(),
			gen:          r.U64(),
			lastSyncNano: r.I64(),
			snapshots:    r.I64(),
			sketches:     make(map[engine.Structures]bounded.Sketch),
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("netagg: checkpoint agent %d: %w", i, err)
		}
		if row.id == "" {
			return nil, fmt.Errorf("netagg: checkpoint agent %d has empty id", i)
		}
		if seen[row.id] {
			return nil, fmt.Errorf("netagg: checkpoint repeats agent %q", row.id)
		}
		seen[row.id] = true
		blobs := int(r.U32())
		prev := engine.Structures(0)
		for b := 0; b < blobs; b++ {
			bit := engine.Structures(r.U32())
			payload := r.Bytes32()
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("netagg: checkpoint agent %q blob %d: %w", row.id, b, err)
			}
			if bit == 0 || bit&(bit-1) != 0 || bit&^fileAccept != 0 {
				return nil, fmt.Errorf("netagg: checkpoint agent %q has invalid structure bit %#x", row.id, uint32(bit))
			}
			if bit <= prev {
				return nil, fmt.Errorf("netagg: checkpoint agent %q blobs out of order at bit %#x", row.id, uint32(bit))
			}
			prev = bit
			sk, err := bounded.UnmarshalSketch(payload)
			if err != nil {
				return nil, fmt.Errorf("netagg: checkpoint agent %q bit %#x: %w", row.id, uint32(bit), err)
			}
			if !sketchMatchesBit(bit, sk) {
				return nil, fmt.Errorf("netagg: checkpoint agent %q bit %#x decodes to %T", row.id, uint32(bit), sk)
			}
			row.sketches[bit] = sk
		}
		rows = append(rows, row)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("netagg: checkpoint state: %w", err)
	}
	return rows, nil
}

// openCheckpoint opens the store and recovers the agent table. Called
// from NewAggregator before Serve, so the table is written lock-free.
func (a *Aggregator) openCheckpoint() error {
	store, err := ckpt.Open(a.opt.CheckpointDir, ckpt.Options{Keep: a.opt.CheckpointKeep})
	if err != nil {
		return fmt.Errorf("netagg: aggregator checkpoint dir: %w", err)
	}
	a.store = store
	payload, _, err := store.Load()
	if errors.Is(err, ckpt.ErrNoCheckpoint) {
		return nil // cold start
	}
	if err != nil {
		return fmt.Errorf("netagg: aggregator loading checkpoint: %w", err)
	}
	rows, err := unmarshalAggState(payload, a.opt.Config, a.opt.Structures)
	if err != nil {
		return err
	}
	for _, row := range rows {
		st := &agentState{sketches: row.sketches, seq: row.seq, gen: row.gen}
		st.lastSyncUnixNano.Store(row.lastSyncNano)
		st.snapshots.Store(row.snapshots)
		a.agents[row.id] = st
	}
	if len(rows) > 0 {
		a.stateVersion++ // recovered state is a new version to checkpoint loops
	}
	a.recoveredAgents.Add(int64(len(rows)))
	a.ckptVersion = a.stateVersion // the state on disk IS this version
	return nil
}

// checkpointLoop writes a checkpoint every CheckpointEvery while the
// committed state keeps moving; unchanged state writes nothing.
func (a *Aggregator) checkpointLoop() {
	defer close(a.ckptDone)
	ticker := time.NewTicker(a.opt.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-a.ckptStop:
			return
		case <-ticker.C:
			if err := a.Checkpoint(); err != nil {
				a.opt.Logf("netagg: aggregator checkpoint: %v", err)
			}
		}
	}
}

// Checkpoint writes the current committed agent table to the
// checkpoint directory now, skipping the write when nothing moved
// since the last one. It errors if the aggregator was built without
// CheckpointDir. Safe to call concurrently with serving; the capture
// is one critical section and the (dominant) marshal+fsync runs
// outside it.
func (a *Aggregator) Checkpoint() error {
	if a.store == nil {
		return errors.New("netagg: aggregator has no checkpoint directory")
	}
	a.mu.Lock()
	version := a.stateVersion
	if version == a.ckptVersion && a.store.LatestSeq() > 0 {
		a.mu.Unlock()
		return nil
	}
	// Stored sketches are immutable once committed (commits REPLACE
	// pointers), so capturing the pointers under the lock licenses
	// marshaling them outside it; only the maps themselves need
	// private copies.
	rows := make([]aggAgentRow, 0, len(a.agents))
	for id, st := range a.agents {
		private := make(map[engine.Structures]bounded.Sketch, len(st.sketches))
		for bit, sk := range st.sketches {
			private[bit] = sk
		}
		rows = append(rows, aggAgentRow{
			id:           id,
			seq:          st.seq,
			gen:          st.gen,
			lastSyncNano: st.lastSyncUnixNano.Load(),
			snapshots:    st.snapshots.Load(),
			sketches:     private,
		})
	}
	a.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })

	payload, err := marshalAggState(a.opt.Config, a.opt.Structures, rows)
	if err != nil {
		return err
	}
	if _, err := a.store.Save(payload); err != nil {
		return fmt.Errorf("netagg: aggregator checkpoint save: %w", err)
	}
	a.checkpointsWritten.Add(1)
	a.mu.Lock()
	if a.ckptVersion < version {
		a.ckptVersion = version
	}
	a.mu.Unlock()
	return nil
}

// Checkpoint writes the agent's engine state to its checkpoint
// directory now, skipping the write when the engine generation has not
// moved since the last one. It errors if the agent was built without
// CheckpointDir.
func (a *Agent) Checkpoint() error {
	if a.store == nil {
		return errors.New("netagg: agent has no checkpoint directory")
	}
	a.ckptMu.Lock()
	defer a.ckptMu.Unlock()
	// Read the generation BEFORE snapshotting (same discipline as
	// Sync): a concurrent Ingest in between makes the written state
	// newer than the recorded gen, which only causes one harmless
	// rewrite next tick — never a skipped update.
	gen := int64(a.eng.Generation())
	if gen == a.lastCkptGen && a.store.LatestSeq() > 0 {
		return nil
	}
	if _, err := a.eng.CheckpointTo(a.store); err != nil {
		return fmt.Errorf("netagg: agent %s checkpoint: %w", a.opt.ID, err)
	}
	a.lastCkptGen = gen
	a.checkpointsWritten.Add(1)
	return nil
}

// openCheckpoint opens the agent's store and, when a checkpoint
// exists, restores the freshly built (still pristine) engine from it —
// the restart-without-replay path. Called from NewAgent.
func (a *Agent) openCheckpoint() error {
	store, err := ckpt.Open(a.opt.CheckpointDir, ckpt.Options{})
	if err != nil {
		return fmt.Errorf("netagg: agent %s checkpoint dir: %w", a.opt.ID, err)
	}
	a.store = store
	payload, _, err := store.Load()
	if errors.Is(err, ckpt.ErrNoCheckpoint) {
		return nil // cold start
	}
	if err != nil {
		return fmt.Errorf("netagg: agent %s loading checkpoint: %w", a.opt.ID, err)
	}
	if err := a.eng.RestorePartitioned(payload); err != nil {
		return fmt.Errorf("netagg: agent %s restoring checkpoint: %w", a.opt.ID, err)
	}
	a.lastCkptGen = int64(a.eng.Generation())
	a.restoredCkpt = true
	return nil
}
