// Package netagg is the networked aggregation tier: the paper's
// distributed monitoring scenario run as a real service. Site Agents
// ingest their local substream through the sharded columnar engine and
// periodically ship engine-merged snapshots — framed netproto messages
// over TCP — to an Aggregator that holds every agent's latest state,
// merges it into a global view, and answers Client queries for the
// union stream. Linearity does all the heavy lifting: a merged snapshot
// is a tiny linear function of a site's whole substream, so the
// aggregator's answers are (in the sketches' exact regimes)
// bit-identical to a single engine fed every site's stream — the same
// differential guarantee the engine and wire layers already pin, now
// across machines.
//
//	site stream ─▶ Agent[engine S shards] ──SNAPSHOT/ACK──▶ ┐
//	site stream ─▶ Agent[engine S shards] ──SNAPSHOT/ACK──▶ ├─ Aggregator ──ANSWER──▶ Client
//	site stream ─▶ Agent[engine S shards] ──SNAPSHOT/ACK──▶ ┘   (merged view,
//	                                                             per-agent state)
//
// # Incremental sync
//
// An agent's sync tick reads its engine's Generation() BEFORE
// marshaling; when the generation still equals the one the aggregator
// last ACKed, the tick ships NOTHING — no frame, no marshal, no merged
// view build. Quiet sites therefore cost the network nothing, which is
// the point of the bounded-deletion summaries: state only moves when
// it changed. Because snapshots carry full engine-merged state (not
// deltas), a re-send after a lost ACK or a reconnect REPLACES the
// agent's previous contribution on the aggregator instead of
// double-counting it — idempotency is what makes the retry loop safe.
//
// # Failure handling
//
// Agents own the reconnect story: dial failures and dead connections
// back off exponentially (BackoffMin doubling to BackoffMax), every
// read and write carries a deadline, and the WELCOME handshake's
// LastSeq tells a reconnecting agent whether the aggregator still
// holds its state (aggregator restart ⇒ LastSeq regresses ⇒ the agent
// forces a full resend). The aggregator commits snapshots atomically —
// every blob decodes or none applies — so an agent dying mid-frame
// leaves the global state exactly as it was.
package netagg

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"time"

	bounded "repro"
	"repro/engine"
	"repro/internal/netproto"
)

// countingConn wraps a net.Conn, tallying bytes moved in each
// direction into caller-owned atomics — the byte counters behind the
// frames/bytes observability surface. Deadline and Close calls pass
// through to the wrapped conn.
type countingConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// configEcho converts the library Config to the netproto echo form.
// Exact field equality on the echo is the merge-compatibility gate:
// same seed means same hash coefficients, which is what makes two
// sites' sketches linear in the same basis.
func configEcho(cfg bounded.Config) netproto.ConfigEcho {
	return netproto.ConfigEcho{N: cfg.N, Eps: cfg.Eps, Alpha: cfg.Alpha, Seed: cfg.Seed}
}

// structureBits iterates the single-structure bits set in s, low to
// high — the canonical blob order inside a SNAPSHOT.
func structureBits(s engine.Structures) []engine.Structures {
	var bits []engine.Structures
	for b := engine.Structures(1); b != 0 && b <= s; b <<= 1 {
		if s&b != 0 {
			bits = append(bits, b)
		}
	}
	return bits
}

// structureNames maps the CLI spelling of each structure to its bit —
// the vocabulary cmd/bdagent and cmd/bdaggd share.
var structureNames = map[string]engine.Structures{
	"hh":        engine.HeavyHitters,
	"l1":        engine.L1Estimator,
	"l0":        engine.L0Estimator,
	"l1sampler": engine.L1Sampler,
	"support":   engine.SupportSampler,
	"l2hh":      engine.L2HeavyHitters,
	"sync":      engine.SyncSketch,
}

// ParseStructures parses a comma-separated structure list
// ("hh,l1,support") into an engine structure set.
func ParseStructures(s string) (engine.Structures, error) {
	var out engine.Structures
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		bit, ok := structureNames[strings.ToLower(name)]
		if !ok {
			return 0, fmt.Errorf("netagg: unknown structure %q (want hh,l1,l0,l1sampler,support,l2hh,sync)", name)
		}
		out |= bit
	}
	if out == 0 {
		return 0, fmt.Errorf("netagg: empty structure list")
	}
	return out, nil
}

// deadline computes an absolute deadline, zero (= none) when d is 0.
func deadline(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

// discard is the nil-safe logger sink.
func discardLogf(string, ...any) {}

// logfOr returns f, or the silent sink when f is nil.
func logfOr(f func(string, ...any)) func(string, ...any) {
	if f == nil {
		return discardLogf
	}
	return f
}

var _ io.ReadWriter = (*countingConn)(nil)
