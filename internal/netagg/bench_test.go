package netagg

import (
	"context"
	"net"
	"testing"
	"time"

	bounded "repro"
	"repro/engine"
)

// benchSetup stands up a loopback aggregator + one agent with phase-1
// state committed, so each benchmark iteration measures steady-state
// work, not cold starts.
func benchSetup(b *testing.B) (*Agent, *Aggregator, string) {
	b.Helper()
	agg, err := NewAggregator(AggregatorOptions{Config: testConfig, Structures: testStructures})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go agg.Serve(ln)
	b.Cleanup(func() { agg.Close() })

	a, err := NewAgent(AgentOptions{
		ID: "bench", Aggregator: ln.Addr().String(), Config: testConfig,
		Engine:     engine.Options{Shards: 2, Structures: testStructures},
		BackoffMin: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { a.Close() })

	if err := a.Ingest(testStream(40_000, 17)); err != nil {
		b.Fatal(err)
	}
	if err := a.Sync(context.Background()); err != nil {
		b.Fatal(err)
	}
	return a, agg, ln.Addr().String()
}

// BenchmarkSyncRoundTrip measures one full incremental sync cycle over
// a real loopback socket: a small ingest to move the generation, then
// marshal every enabled structure, frame, ship, decode, commit, ACK.
func BenchmarkSyncRoundTrip(b *testing.B) {
	a, _, _ := benchSetup(b)
	tick := []bounded.Update{{Index: 1, Delta: 1}}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Ingest(tick); err != nil {
			b.Fatal(err)
		}
		if err := a.Sync(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := a.Stats()
	if st.SnapshotsSent > 0 {
		b.ReportMetric(float64(st.BytesOut)/float64(st.SnapshotsSent), "bytes/snapshot")
	}
}

// BenchmarkSyncSkip measures the idle tick: generation unchanged, so
// the sync must cost one atomic load and no I/O at all — the number
// that justifies running agents on a tight interval.
func BenchmarkSyncSkip(b *testing.B) {
	a, _, _ := benchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Sync(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := a.Stats(); st.SnapshotsSkipped < int64(b.N) {
		b.Fatalf("skipped %d of %d idle syncs", st.SnapshotsSkipped, b.N)
	}
}

// BenchmarkQueryRoundTrip measures a client point-estimate batch over
// the socket against the aggregator's cached merged view.
func BenchmarkQueryRoundTrip(b *testing.B) {
	_, _, addr := benchSetup(b)
	c, err := DialClient(addr, ClientOptions{Config: testConfig})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Estimate(keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyntheticIngest measures the load generator feeding the
// agent's engine (no network in the loop; Sync is driven separately).
func BenchmarkSyntheticIngest(b *testing.B) {
	a, err := NewAgent(AgentOptions{
		ID: "bench-gen", Aggregator: "127.0.0.1:1", Config: testConfig,
		Engine: engine.Options{Shards: 2, Structures: testStructures},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { a.Close() })
	ctx := context.Background()
	b.ResetTimer()
	var updates int
	for i := 0; i < b.N; i++ {
		rep, err := RunSynthetic(ctx, a, SyntheticConfig{Updates: 100_000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		updates += rep.Updates
	}
	b.StopTimer()
	b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/s")
}
