// Package gen synthesizes the workloads this library's benchmarks and
// examples run on. The paper is a theory paper with no datasets; these
// generators realize the application scenarios its introduction uses to
// motivate bounded deletions (network traffic differences, remote
// differential compression, clustered sensor occupancy) plus the
// adversarial instances of its own lower-bound section (Section 8),
// parameterized by the target alpha.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
)

// Config is the common generator configuration.
type Config struct {
	N       uint64  // universe size
	Items   int     // number of insert updates (pre-deletion)
	Alpha   float64 // target L1 alpha: deletions remove a (1-1/alpha) mass fraction
	Zipf    float64 // zipf skew (0 => uniform; otherwise > 1, e.g. 1.2)
	Shuffle bool    // interleave deletions with insertions
	Seed    int64
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

func (c Config) validate() {
	if c.N < 2 || c.Items < 1 {
		panic(fmt.Sprintf("gen: invalid config %+v", c))
	}
	if c.Alpha < 1 {
		panic("gen: alpha must be >= 1")
	}
}

// BoundedDeletion builds a strict-turnstile stream with the L1
// alpha-property: Items unit insertions (zipf or uniform) followed by
// per-item deletions of a (1 - 1/alpha) fraction of that item's mass.
// With Shuffle the deletions are interleaved after their insertions.
func BoundedDeletion(c Config) *stream.Stream {
	c.validate()
	rng := c.rng()
	s := &stream.Stream{N: c.N}
	var draw func() uint64
	if c.Zipf > 1 {
		z := rand.NewZipf(rng, c.Zipf, 1, c.N-1)
		draw = z.Uint64
	} else {
		draw = func() uint64 { return uint64(rng.Int63n(int64(c.N))) }
	}
	counts := make(map[uint64]int64)
	var distinct []uint64 // insertion order, for deterministic iteration
	for i := 0; i < c.Items; i++ {
		id := draw()
		if counts[id] == 0 {
			distinct = append(distinct, id)
		}
		counts[id]++
		s.Updates = append(s.Updates, stream.Update{Index: id, Delta: 1})
	}
	if c.Alpha > 1 {
		// Target: alpha = (ins+del)/(ins-del), so del = ins*(a-1)/(a+1).
		target := int64(float64(c.Items) * (c.Alpha - 1) / (c.Alpha + 1))
		remaining := make(map[uint64]int64, len(counts))
		var dels []stream.Update
		deleted := int64(0)
		// First pass: proportional deletions per item.
		for _, id := range distinct {
			d := int64(float64(counts[id]) * (c.Alpha - 1) / (c.Alpha + 1))
			remaining[id] = counts[id] - d
			deleted += d
			for k := int64(0); k < d; k++ {
				dels = append(dels, stream.Update{Index: id, Delta: -1})
			}
		}
		// Second pass: the floor truncation above under-deletes on long
		// tails of singletons; make up the shortfall round-robin while
		// keeping the final vector nonzero.
		for deleted < target {
			progressed := false
			for _, id := range distinct {
				if deleted >= target {
					break
				}
				if remaining[id] > 0 && (int64(c.Items)-deleted) > 1 {
					remaining[id]--
					deleted++
					progressed = true
					dels = append(dels, stream.Update{Index: id, Delta: -1})
				}
			}
			if !progressed {
				break
			}
		}
		rng.Shuffle(len(dels), func(a, b int) { dels[a], dels[b] = dels[b], dels[a] })
		if c.Shuffle {
			s.Updates = interleave(rng, s.Updates, dels, counts)
		} else {
			s.Updates = append(s.Updates, dels...)
		}
	}
	return s
}

// interleave merges deletions into the stream after enough matching
// insertions have occurred, keeping the stream strict-turnstile.
func interleave(rng *rand.Rand, ins, dels []stream.Update, counts map[uint64]int64) []stream.Update {
	// Walk the insertion stream; after each insertion, with probability
	// proportional to pending deletions, emit deletions whose items
	// already have positive balance.
	balance := make(map[uint64]int64, len(counts))
	pending := make(map[uint64]int64, len(counts))
	for _, d := range dels {
		pending[d.Index]++
	}
	out := make([]stream.Update, 0, len(ins)+len(dels))
	ratio := float64(len(dels)) / float64(len(ins))
	carry := 0.0
	for _, u := range ins {
		out = append(out, u)
		balance[u.Index]++
		carry += ratio
		for carry >= 1 {
			carry--
			// Delete from the item itself if possible, else skip (the
			// leftover deletions are appended at the end).
			if pending[u.Index] > 0 && balance[u.Index] > 0 {
				out = append(out, stream.Update{Index: u.Index, Delta: -1})
				pending[u.Index]--
				balance[u.Index]--
			}
		}
	}
	for id, p := range pending {
		for k := int64(0); k < p; k++ {
			out = append(out, stream.Update{Index: id, Delta: -1})
		}
	}
	return out
}

// Turnstile builds an unbounded-deletion contrast stream: nearly all
// mass is inserted then deleted, leaving a tiny residue (alpha ~ m).
func Turnstile(c Config) *stream.Stream {
	c.validate()
	rng := c.rng()
	s := &stream.Stream{N: c.N}
	counts := make(map[uint64]int64)
	var distinct []uint64
	for i := 0; i < c.Items; i++ {
		id := uint64(rng.Int63n(int64(c.N)))
		if counts[id] == 0 {
			distinct = append(distinct, id)
		}
		counts[id]++
		s.Updates = append(s.Updates, stream.Update{Index: id, Delta: 1})
	}
	for k, id := range distinct {
		d := counts[id]
		if k == 0 {
			d-- // leave one unit so ||f||_1 = 1 > 0
		}
		if d > 0 {
			s.Updates = append(s.Updates, stream.Update{Index: id, Delta: -d})
		}
	}
	return s
}

// NetworkPair builds two traffic snapshots f1, f2 over [source,
// destination] pairs whose difference carries about `diff` fraction of
// the joint mass — the traffic-monitoring scenario of Section 1 (alpha
// ~ 2/diff for the difference stream f1 - f2).
func NetworkPair(c Config, diff float64) (f1, f2 *stream.Stream) {
	c.validate()
	rng := c.rng()
	f1 = &stream.Stream{N: c.N}
	f2 = &stream.Stream{N: c.N}
	z := rand.NewZipf(rng, 1.2, 1, c.N-1)
	for i := 0; i < c.Items; i++ {
		id := z.Uint64()
		f1.Updates = append(f1.Updates, stream.Update{Index: id, Delta: 1})
		// f2 shares the flow except with probability diff.
		if rng.Float64() < diff {
			f2.Updates = append(f2.Updates, stream.Update{Index: z.Uint64(), Delta: 1})
		} else {
			f2.Updates = append(f2.Updates, stream.Update{Index: id, Delta: 1})
		}
	}
	return f1, f2
}

// Difference converts a snapshot pair into the single general-turnstile
// stream f1 - f2 (insert f1, delete f2).
func Difference(f1, f2 *stream.Stream) *stream.Stream {
	out := &stream.Stream{N: f1.N}
	out.Updates = append(out.Updates, f1.Updates...)
	for _, u := range f2.Updates {
		out.Updates = append(out.Updates, stream.Update{Index: u.Index, Delta: -u.Delta})
	}
	return out
}

// RDCSync builds the remote-differential-compression scenario: a file of
// `blocks` chunk hashes is synchronized after a `changed` fraction of
// chunks were rewritten. The stream deletes stale chunks and inserts new
// ones; alpha ~ (1+changed)/(1-changed) stays near 1 for realistic
// change rates (the paper's "even a half resynchronized gives alpha=2").
func RDCSync(c Config, changed float64) *stream.Stream {
	c.validate()
	rng := c.rng()
	s := &stream.Stream{N: c.N}
	blocks := c.Items
	for b := 0; b < blocks; b++ {
		s.Updates = append(s.Updates, stream.Update{Index: uint64(b) % c.N, Delta: 1})
	}
	for b := 0; b < blocks; b++ {
		if rng.Float64() < changed {
			s.Updates = append(s.Updates, stream.Update{Index: uint64(b) % c.N, Delta: -1})
			// The rewritten chunk hashes to a fresh identity.
			s.Updates = append(s.Updates, stream.Update{
				Index: uint64(blocks) + uint64(rng.Int63n(int64(c.N)-int64(blocks)%int64(c.N))),
				Delta: 1,
			})
		}
	}
	for i := range s.Updates {
		s.Updates[i].Index %= c.N
	}
	return s
}

// SensorOccupancy builds the clustered-sensor L0 scenario: F0 = Items
// sensors report at least once; only the 1/alpha fraction inside
// persistent clusters stay active (nonzero) at query time, so
// F0/L0 = alpha (the L0 alpha-property).
func SensorOccupancy(c Config) *stream.Stream {
	c.validate()
	rng := c.rng()
	s := &stream.Stream{N: c.N}
	seen := make(map[uint64]bool, c.Items)
	type sensor struct {
		id uint64
		w  int64
	}
	order := make([]sensor, 0, c.Items)
	for len(order) < c.Items {
		id := uint64(rng.Int63n(int64(c.N)))
		if seen[id] {
			continue
		}
		seen[id] = true
		w := 1 + rng.Int63n(3)
		order = append(order, sensor{id, w})
		s.Updates = append(s.Updates, stream.Update{Index: id, Delta: w})
	}
	kill := int(float64(len(order)) * (1 - 1/c.Alpha))
	for i := 0; i < kill; i++ {
		s.Updates = append(s.Updates, stream.Update{Index: order[i].id, Delta: -order[i].w})
	}
	return s
}
