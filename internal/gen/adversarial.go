package gen

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/stream"
)

// IndInstance is one adversarial stream built from the paper's Section 8
// augmented-indexing reduction (Theorem 12): r = log_6(alpha/4) levels
// of planted sets x_1..x_r, each of floor(1/(2 eps)) items inserted with
// weight alpha*6^i + 1; the suffix levels above QueryLevel are deleted
// down to weight 1. A correct eps-heavy-hitters algorithm must return
// exactly the level-QueryLevel set — this is the hardest input the
// lower bound knows how to build, so running our upper-bound algorithms
// against it exercises them at their design limit.
type IndInstance struct {
	Stream     *stream.Stream
	QueryLevel int
	Answer     []uint64 // the planted set x_{QueryLevel}, sorted
	Eps        float64
	Alpha      float64
}

// AdversarialInd builds the Theorem 12 instance. level is 1-based and
// clamped to [1, r]; alpha must be > 24 for at least one level to exist
// (log_6(alpha/4) >= 1).
func AdversarialInd(seed int64, n uint64, eps, alpha float64, level int) IndInstance {
	rng := rand.New(rand.NewSource(seed))
	const d = 6.0
	r := int(math.Floor(math.Log(alpha/4) / math.Log(d)))
	if r < 1 {
		r = 1
	}
	if level < 1 {
		level = 1
	}
	if level > r {
		level = r
	}
	setSize := int(math.Floor(1 / (2 * eps)))
	if setSize < 1 {
		setSize = 1
	}
	s := &stream.Stream{N: n}
	sets := make([][]uint64, r+1)
	used := make(map[uint64]bool)
	for i := 1; i <= r; i++ {
		set := make([]uint64, 0, setSize)
		for len(set) < setSize {
			id := uint64(rng.Int63n(int64(n)))
			if used[id] {
				continue
			}
			used[id] = true
			set = append(set, id)
		}
		sets[i] = set
		w := int64(alpha*math.Pow(d, float64(i))) + 1
		for _, id := range set {
			s.Updates = append(s.Updates, stream.Update{Index: id, Delta: w})
		}
	}
	// Bob deletes the suffix weights above the query level.
	for i := level + 1; i <= r; i++ {
		w := int64(alpha * math.Pow(d, float64(i)))
		for _, id := range sets[i] {
			s.Updates = append(s.Updates, stream.Update{Index: id, Delta: -w})
		}
	}
	ans := append([]uint64(nil), sets[level]...)
	sort.Slice(ans, func(a, b int) bool { return ans[a] < ans[b] })
	return IndInstance{Stream: s, QueryLevel: level, Answer: ans, Eps: eps, Alpha: alpha}
}

// EqualityInstance is the Theorem 13 construction: an L1-estimation
// stream with alpha = 3/2 whose final norm is n/2 when Alice's and
// Bob's coded sets agree and at least 5n/8 when they differ — so even a
// (1 +- 1/16) L1 estimate decides EQUALITY, which costs Omega(log n)
// bits.
type EqualityInstance struct {
	Stream *stream.Stream
	Equal  bool
	// L1IfEqual / L1IfDifferent are the two separated norm regimes.
	L1IfEqual, L1Threshold int64
}

// AdversarialEquality builds the instance over universe n (power of
// two): Alice inserts the characteristic vector of a random n/8-subset
// of [n/2] plus all of [n/2, n); Bob deletes his own coded subset. Two
// random n/8-subsets of [n/2] have symmetric difference >= n/16 with
// overwhelming probability, standing in for the paper's code family.
func AdversarialEquality(seed int64, n uint64, equal bool) EqualityInstance {
	rng := rand.New(rand.NewSource(seed))
	half := n / 2
	size := int(n / 8)
	draw := func(r *rand.Rand) map[uint64]bool {
		set := make(map[uint64]bool, size)
		for len(set) < size {
			set[uint64(r.Int63n(int64(half)))] = true
		}
		return set
	}
	alice := draw(rng)
	bob := alice
	if !equal {
		bob = draw(rand.New(rand.NewSource(seed + 1)))
	}
	s := &stream.Stream{N: n}
	for id := range alice {
		s.Updates = append(s.Updates, stream.Update{Index: id, Delta: 1})
	}
	for i := half; i < n; i++ {
		s.Updates = append(s.Updates, stream.Update{Index: i, Delta: 1})
	}
	for id := range bob {
		s.Updates = append(s.Updates, stream.Update{Index: id, Delta: -1})
	}
	return EqualityInstance{
		Stream:      s,
		Equal:       equal,
		L1IfEqual:   int64(half),
		L1Threshold: int64(half) + int64(n)/16, // midpoint of the gap
	}
}

// GapHammingInstance is the Theorem 14 flavor of hardness: the stream's
// L1 equals the Hamming distance between two random bit vectors with a
// planted gap around n/2, so a (1 +- eps) L1 estimate with
// eps < 1/(2 sqrt(n)) decides Gap-Hamming. The construction keeps
// alpha ~ 2 (each coordinate touched at most twice, most survive).
type GapHammingInstance struct {
	Stream *stream.Stream
	// Far is true when the Hamming distance is n/2 + 2 sqrt(n), false
	// when it is n/2 - 2 sqrt(n).
	Far       bool
	Distance  int64
	Threshold float64 // n/2: estimates above mean Far, below mean near
}

// AdversarialGapHamming builds the instance over n coordinates.
func AdversarialGapHamming(seed int64, n uint64, far bool) GapHammingInstance {
	rng := rand.New(rand.NewSource(seed))
	gap := int64(2 * math.Sqrt(float64(n)))
	target := int64(n)/2 - gap
	if far {
		target = int64(n)/2 + gap
	}
	// x random; y = x with exactly `target` flipped positions.
	flip := make(map[uint64]bool, target)
	for int64(len(flip)) < target {
		flip[uint64(rng.Int63n(int64(n)))] = true
	}
	s := &stream.Stream{N: n}
	for i := uint64(0); i < n; i++ {
		xi := rng.Intn(2) == 1
		yi := xi != flip[i]
		// f_i = y_i - x_i in {-1, 0, 1}; |f|_1 counts disagreements.
		if yi {
			s.Updates = append(s.Updates, stream.Update{Index: i, Delta: 1})
		}
		if xi {
			s.Updates = append(s.Updates, stream.Update{Index: i, Delta: -1})
		}
	}
	return GapHammingInstance{
		Stream: s, Far: far, Distance: target, Threshold: float64(n) / 2,
	}
}

// SupportInstance is the Theorem 20 construction: log(alpha/4) blocks of
// exponentially many singleton items; after the suffix deletion, a
// majority of the live support lies in the query block, so a correct
// support sampler's output identifies it (which is what makes the
// problem cost Omega(log(n/alpha) log(alpha)) bits).
type SupportInstance struct {
	Stream     *stream.Stream
	QueryLevel int
	// Block is the set of identities planted at the query level.
	Block map[uint64]bool
}

// AdversarialSupport builds the instance: level i holds 2^i distinct
// items, levels above the query level are deleted entirely.
func AdversarialSupport(seed int64, n uint64, levels, query int) SupportInstance {
	rng := rand.New(rand.NewSource(seed))
	if query < 1 {
		query = 1
	}
	if query > levels {
		query = levels
	}
	s := &stream.Stream{N: n}
	used := make(map[uint64]bool)
	blocks := make([]map[uint64]bool, levels+1)
	for i := 1; i <= levels; i++ {
		blocks[i] = make(map[uint64]bool)
		for len(blocks[i]) < 1<<uint(i) {
			id := uint64(rng.Int63n(int64(n)))
			if used[id] {
				continue
			}
			used[id] = true
			blocks[i][id] = true
			s.Updates = append(s.Updates, stream.Update{Index: id, Delta: 1})
		}
	}
	for i := query + 1; i <= levels; i++ {
		for id := range blocks[i] {
			s.Updates = append(s.Updates, stream.Update{Index: id, Delta: -1})
		}
	}
	return SupportInstance{Stream: s, QueryLevel: query, Block: blocks[query]}
}

// InnerProductInstance is the Theorem 21 construction: block items carry
// weight b*10^j + 1 with b in {alpha, 2*alpha} encoding Alice's bits;
// Bob zeroes the suffix blocks and probes coordinate i* with a singleton
// g. An inner-product estimate with additive eps ||f||_1 ||g||_1 error
// separates the two weight levels.
type InnerProductInstance struct {
	F, G *stream.Stream
	// Bit is the planted bit at the probe coordinate.
	Bit bool
	// Threshold separates the two inner-product regimes: above means
	// Bit = true.
	Threshold float64
}

// AdversarialInnerProduct builds the instance with block size
// floor(1/(8 eps)) and `level` weight scales.
func AdversarialInnerProduct(seed int64, n uint64, eps, alpha float64, level int) InnerProductInstance {
	rng := rand.New(rand.NewSource(seed))
	if level < 1 {
		level = 1
	}
	blockSize := int(1 / (8 * eps))
	if blockSize < 1 {
		blockSize = 1
	}
	f := &stream.Stream{N: n}
	var probe uint64
	var bit bool
	next := uint64(0)
	for j := 1; j <= level; j++ {
		scale := math.Pow(10, float64(j))
		for k := 0; k < blockSize; k++ {
			id := next
			next++
			b := alpha
			planted := rng.Intn(2) == 1
			if planted {
				b = 2 * alpha
			}
			w := int64(b*scale) + 1
			f.Updates = append(f.Updates, stream.Update{Index: id, Delta: w})
			if j == level && k == blockSize/2 {
				probe = id
				bit = planted
			}
		}
	}
	// Bob knows nothing to delete above `level` in this single-shot
	// variant; he probes with g = e_probe.
	g := &stream.Stream{N: n}
	g.Updates = append(g.Updates, stream.Update{Index: probe, Delta: 1})
	scale := math.Pow(10, float64(level))
	return InnerProductInstance{
		F: f, G: g, Bit: bit,
		Threshold: 1.5 * alpha * scale, // midpoint of alpha*10^j vs 2*alpha*10^j
	}
}
