package gen

import (
	"math"
	"testing"

	"repro/internal/stream"
)

func TestBoundedDeletionAlphaTarget(t *testing.T) {
	for _, alpha := range []float64{1, 2, 8, 32} {
		s := BoundedDeletion(Config{N: 1 << 14, Items: 30000, Alpha: alpha, Zipf: 1.3, Seed: 1})
		tr := stream.NewTracker(1 << 14)
		tr.Consume(s)
		got := tr.AlphaL1()
		if got > alpha*1.2+0.5 {
			t.Errorf("alpha=%v: measured %v exceeds target", alpha, got)
		}
		if alpha >= 2 && got < alpha/2 {
			t.Errorf("alpha=%v: measured %v far below target", alpha, got)
		}
		if !tr.Strict {
			t.Errorf("alpha=%v: stream is not strict turnstile", alpha)
		}
	}
}

func TestBoundedDeletionShuffleStrict(t *testing.T) {
	s := BoundedDeletion(Config{N: 1 << 10, Items: 20000, Alpha: 4, Shuffle: true, Seed: 2})
	tr := stream.NewTracker(1 << 10)
	tr.Consume(s)
	if !tr.Strict {
		t.Error("shuffled stream must stay strict turnstile")
	}
	if a := tr.AlphaL1(); a > 5.5 {
		t.Errorf("shuffled alpha %v exceeds target", a)
	}
}

func TestBoundedDeletionDeterministicSeed(t *testing.T) {
	a := BoundedDeletion(Config{N: 256, Items: 1000, Alpha: 2, Seed: 7})
	b := BoundedDeletion(Config{N: 256, Items: 1000, Alpha: 2, Seed: 7})
	if len(a.Updates) != len(b.Updates) {
		t.Fatal("same seed produced different streams")
	}
	for i := range a.Updates {
		if a.Updates[i] != b.Updates[i] {
			t.Fatal("same seed produced different updates")
		}
	}
}

func TestTurnstileNearTotalCancellation(t *testing.T) {
	s := Turnstile(Config{N: 1 << 10, Items: 10000, Alpha: 1, Seed: 3})
	tr := stream.NewTracker(1 << 10)
	tr.Consume(s)
	if tr.F.L1() != 1 {
		t.Errorf("turnstile residue L1 = %d, want 1", tr.F.L1())
	}
	if a := tr.AlphaL1(); a < 1000 {
		t.Errorf("turnstile alpha %v should be ~ m", a)
	}
}

func TestNetworkPairDifference(t *testing.T) {
	f1, f2 := NetworkPair(Config{N: 1 << 16, Items: 40000, Alpha: 1, Seed: 4}, 0.1)
	d := Difference(f1, f2)
	tr := stream.NewTracker(1 << 16)
	tr.Consume(d)
	// Difference mass should be around 2*diff of total; alpha ~ 1/diff.
	a := tr.AlphaL1()
	if a < 2 || a > 40 {
		t.Errorf("difference stream alpha = %v, want ~10", a)
	}
}

func TestRDCSyncSmallAlpha(t *testing.T) {
	s := RDCSync(Config{N: 1 << 16, Items: 20000, Alpha: 1, Seed: 5}, 0.25)
	tr := stream.NewTracker(1 << 16)
	tr.Consume(s)
	if a := tr.AlphaL1(); a > 3 {
		t.Errorf("RDC alpha = %v, want < 3 for 25%% change", a)
	}
}

func TestSensorOccupancyL0Alpha(t *testing.T) {
	s := SensorOccupancy(Config{N: 1 << 20, Items: 5000, Alpha: 4, Seed: 6})
	tr := stream.NewTracker(1 << 20)
	tr.Consume(s)
	got := tr.AlphaL0()
	if math.Abs(got-4) > 0.5 {
		t.Errorf("sensor F0/L0 = %v, want ~4", got)
	}
	if !tr.Strict {
		t.Error("sensor stream must be strict")
	}
}

func TestAdversarialIndStructure(t *testing.T) {
	inst := AdversarialInd(7, 1<<16, 0.05, 1000, 2)
	v := inst.Stream.Materialize()
	l1 := float64(v.L1())
	// Every planted answer item must be an eps-heavy hitter...
	for _, id := range inst.Answer {
		if float64(v[id]) < inst.Eps*l1 {
			t.Errorf("planted item %d has weight %d < eps*L1 = %.0f", id, v[id], inst.Eps*l1)
		}
	}
	// ...and nothing outside it reaches eps/2.
	ansSet := make(map[uint64]bool)
	for _, id := range inst.Answer {
		ansSet[id] = true
	}
	for i, x := range v {
		if !ansSet[i] && float64(x) >= inst.Eps/2*l1 {
			t.Errorf("non-answer item %d is eps/2-heavy (%d of %0.f)", i, x, l1)
		}
	}
	// The stream satisfies a strong alpha-property bound ~ O(alpha^2).
	tr := stream.NewTracker(1 << 16)
	tr.Consume(inst.Stream)
	if sa := tr.StrongAlpha(); math.IsInf(sa, 1) || sa > 3*1000*1000 {
		t.Errorf("instance strong alpha = %v, want O(alpha^2)", sa)
	}
}

func TestAdversarialIndLevelClamping(t *testing.T) {
	inst := AdversarialInd(8, 1<<12, 0.1, 1000, 99)
	if inst.QueryLevel < 1 {
		t.Error("level must clamp to >= 1")
	}
	if len(inst.Answer) == 0 {
		t.Error("answer set empty")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, f := range []func(){
		func() { BoundedDeletion(Config{N: 1, Items: 1, Alpha: 1}) },
		func() { BoundedDeletion(Config{N: 10, Items: 1, Alpha: 0.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
