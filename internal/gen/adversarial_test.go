package gen

import (
	"math"
	"testing"

	"repro/internal/stream"
)

func TestAdversarialEqualityGap(t *testing.T) {
	const n = 1 << 12
	eq := AdversarialEquality(1, n, true)
	ne := AdversarialEquality(2, n, false)
	vEq := eq.Stream.Materialize()
	vNe := ne.Stream.Materialize()
	if got := vEq.L1(); got != eq.L1IfEqual {
		t.Errorf("equal instance L1 = %d, want %d", got, eq.L1IfEqual)
	}
	if got := vNe.L1(); got < ne.L1Threshold+int64(n)/32 {
		t.Errorf("different instance L1 = %d, want comfortably above threshold %d",
			got, ne.L1Threshold)
	}
	// Both instances are bounded-deletion: alpha <= 3/2 + slack.
	for name, inst := range map[string]EqualityInstance{"eq": eq, "ne": ne} {
		tr := stream.NewTracker(n)
		tr.Consume(inst.Stream)
		if a := tr.AlphaL1(); a > 2 {
			t.Errorf("%s instance alpha = %v, want <= 2", name, a)
		}
	}
}

func TestAdversarialGapHammingDistance(t *testing.T) {
	const n = 1 << 12
	far := AdversarialGapHamming(3, n, true)
	near := AdversarialGapHamming(4, n, false)
	if got := far.Stream.Materialize().L1(); got != far.Distance {
		t.Errorf("far L1 = %d, want %d", got, far.Distance)
	}
	if got := near.Stream.Materialize().L1(); got != near.Distance {
		t.Errorf("near L1 = %d, want %d", got, near.Distance)
	}
	if far.Distance <= int64(far.Threshold) || near.Distance >= int64(near.Threshold) {
		t.Error("gap instances not separated around threshold")
	}
	tr := stream.NewTracker(n)
	tr.Consume(far.Stream)
	if a := tr.AlphaL1(); a > 3 {
		t.Errorf("gap-hamming alpha = %v, want ~2", a)
	}
}

func TestAdversarialSupportMajority(t *testing.T) {
	inst := AdversarialSupport(5, 1<<16, 8, 6)
	v := inst.Stream.Materialize()
	inBlock := 0
	for id := range v {
		if inst.Block[id] {
			inBlock++
		}
	}
	if inBlock != len(inst.Block) {
		t.Errorf("block items missing from support: %d of %d", inBlock, len(inst.Block))
	}
	// The query block dominates the surviving support: lower levels sum
	// to less than the block.
	if int64(len(inst.Block)) <= v.L0()/2 {
		t.Errorf("block %d not a majority of support %d", len(inst.Block), v.L0())
	}
}

func TestAdversarialSupportClamps(t *testing.T) {
	inst := AdversarialSupport(6, 1<<12, 4, 99)
	if inst.QueryLevel != 4 {
		t.Errorf("QueryLevel = %d, want clamp to 4", inst.QueryLevel)
	}
}

func TestAdversarialInnerProductEncoding(t *testing.T) {
	for _, seed := range []int64{7, 8, 9, 10} {
		inst := AdversarialInnerProduct(seed, 1<<12, 0.05, 4, 2)
		vf := inst.F.Materialize()
		vg := inst.G.Materialize()
		ip := float64(vf.Inner(vg))
		if inst.Bit && ip <= inst.Threshold {
			t.Errorf("seed %d: bit=1 but <f,g> = %v <= threshold %v", seed, ip, inst.Threshold)
		}
		if !inst.Bit && ip >= inst.Threshold {
			t.Errorf("seed %d: bit=0 but <f,g> = %v >= threshold %v", seed, ip, inst.Threshold)
		}
		// Strong alpha property: every coordinate keeps all its mass.
		tr := stream.NewTracker(1 << 12)
		tr.Consume(inst.F)
		if sa := tr.StrongAlpha(); math.IsInf(sa, 1) || sa > 1 {
			t.Errorf("seed %d: F should be insertion-only here, strong alpha %v", seed, sa)
		}
	}
}
