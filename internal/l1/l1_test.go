package l1

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// strictStream builds a strict-turnstile alpha-property stream: inserts
// followed by partial deletions, never driving any coordinate negative.
func strictStream(rng *rand.Rand, n uint64, inserts int, alpha float64) (*stream.Stream, stream.Vector) {
	s := &stream.Stream{N: n}
	counts := make(map[uint64]int64)
	for i := 0; i < inserts; i++ {
		id := uint64(rng.Int63n(int64(n)))
		counts[id]++
		s.Updates = append(s.Updates, stream.Update{Index: id, Delta: 1})
	}
	if alpha > 1 {
		for id, c := range counts {
			del := int64(float64(c) * (1 - 1/alpha))
			for k := int64(0); k < del; k++ {
				s.Updates = append(s.Updates, stream.Update{Index: id, Delta: -1})
			}
		}
	}
	return s, s.Materialize()
}

// TestExactRegime: while the clock estimate stays below base^2 only
// level 0 is live and the estimate is exact for strict streams.
func TestExactRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewExactClock(rng, 1<<20)
	a.Update(1, 500)
	a.Update(2, 300)
	a.Update(1, -200)
	if got := a.Estimate(); got != 600 {
		t.Errorf("exact-regime estimate = %v, want 600", got)
	}
}

// TestAccuracyUnderSampling reproduces Theorem 6's (1 +- eps) estimate on
// strict alpha-property streams once sampling is active.
func TestAccuracyUnderSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, v := strictStream(rng, 512, 120000, 2)
	want := float64(v.L1())
	ok := 0
	const reps = 20
	for rep := 0; rep < reps; rep++ {
		a := New(rng, 64)
		for _, u := range s.Updates {
			a.Update(u.Index, u.Delta)
		}
		got := a.Estimate()
		if math.Abs(got-want) < 0.35*want {
			ok++
		}
	}
	if ok < reps*3/5 {
		t.Errorf("estimate within 35%% only %d/%d times (want %.0f)", ok, reps, want)
	}
}

// TestExactClockTighter: with the exact clock (ablation AB3) the level
// schedule is deterministic, and accuracy should be at least as good as
// the Morris-clocked version on the same workload.
func TestExactClockTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, v := strictStream(rng, 512, 120000, 2)
	want := float64(v.L1())
	morrisHits, exactHits := 0, 0
	const reps = 15
	for rep := 0; rep < reps; rep++ {
		am := New(rng, 64)
		ae := NewExactClock(rng, 64)
		for _, u := range s.Updates {
			am.Update(u.Index, u.Delta)
			ae.Update(u.Index, u.Delta)
		}
		if math.Abs(am.Estimate()-want) < 0.35*want {
			morrisHits++
		}
		if math.Abs(ae.Estimate()-want) < 0.35*want {
			exactHits++
		}
	}
	if exactHits < morrisHits-4 {
		t.Errorf("exact clock (%d hits) much worse than Morris clock (%d hits)", exactHits, morrisHits)
	}
	if exactHits < reps*3/5 {
		t.Errorf("exact-clock accuracy too low: %d/%d", exactHits, reps)
	}
}

// TestAtMostTwoLevels: the interval schedule never keeps more than two
// counter pairs (Figure 4 stores I_j and I_{j+1} only).
func TestAtMostTwoLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(rng, 16)
	for i := 0; i < 200000; i++ {
		a.Update(uint64(i%100), 1)
		if a.LiveLevels() > 2 {
			t.Fatalf("%d levels live at unit %d", a.LiveLevels(), a.Units())
		}
	}
}

// TestSpaceLogarithmicInStream: SpaceBits must not scale with m — the
// Theorem 6 claim O(log(alpha/eps) + log log n).
func TestSpaceLogarithmicInStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	run := func(m int) int64 {
		a := New(rng, 64)
		for i := 0; i < m; i++ {
			a.Update(uint64(i%100), 1)
		}
		return a.SpaceBits()
	}
	small := run(20000)
	big := run(1280000)
	if float64(big) > 1.6*float64(small) {
		t.Errorf("SpaceBits grew %d -> %d across 64x stream growth", small, big)
	}
	// Against a naive exact counter, the whole structure is tiny.
	if big > 512 {
		t.Errorf("SpaceBits = %d, want well under 512 bits", big)
	}
}

// TestCountersStaySmall: the per-level counters hold O(base^2 * psi)
// samples, far below m.
func TestCountersStaySmall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := New(rng, 32)
	const m = 500000
	for i := 0; i < m; i++ {
		a.Update(1, 1)
	}
	if a.maxCount > m/10 {
		t.Errorf("counter reached %d on an m=%d stream; sampling broken", a.maxCount, m)
	}
}

// TestUnbiased: averaged over repetitions the estimator centers on L1.
func TestUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trueL1 = 40000
	var sum float64
	const reps = 40
	for rep := 0; rep < reps; rep++ {
		a := New(rng, 32)
		for i := 0; i < trueL1; i++ {
			a.Update(uint64(i%64), 1)
		}
		sum += a.Estimate()
	}
	mean := sum / reps
	if math.Abs(mean-trueL1) > 0.15*trueL1 {
		t.Errorf("mean estimate %.0f, want %d +- 15%%", mean, trueL1)
	}
}

func TestEmptyEstimate(t *testing.T) {
	a := New(rand.New(rand.NewSource(8)), 16)
	if a.Estimate() != 0 {
		t.Error("empty stream should estimate 0")
	}
}

func TestRecommendedBase(t *testing.T) {
	b1 := RecommendedBase(2, 0.2, 0.1, 1<<20)
	b2 := RecommendedBase(8, 0.2, 0.1, 1<<20)
	if b2 <= b1 {
		t.Error("base should grow with alpha")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RecommendedBase(1, 0, 0.1, 10)
}

func TestNewPanicsOnSmallBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(rand.New(rand.NewSource(9)), 2)
}

func TestNewGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := NewGeneral(rng, 64, 16, 4, 64, 8)
	for i := 0; i < 10000; i++ {
		g.Update(uint64(i%32), 1)
	}
	got := g.Estimate()
	if got < 2000 || got > 50000 {
		t.Errorf("general estimator = %.0f, want near 10000", got)
	}
}

func BenchmarkUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := New(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Update(uint64(i%1000), 1)
	}
}
