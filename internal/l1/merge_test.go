package l1

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// TestMergeExactInLevelZeroRegime: with an interval base far above the
// combined stream length only level 0 is ever live, its (c+, c-) pair
// counts units exactly, and merging split streams reproduces the
// single-stream counters bit for bit (exact clock keeps the schedule
// deterministic).
func TestMergeExactInLevelZeroRegime(t *testing.T) {
	s := gen.BoundedDeletion(gen.Config{N: 256, Items: 5000, Alpha: 2, Seed: 127})
	const base = 1 << 30
	whole := NewExactClock(rand.New(rand.NewSource(1)), base)
	a := NewExactClock(rand.New(rand.NewSource(2)), base)
	b := NewExactClock(rand.New(rand.NewSource(3)), base)
	for _, u := range s.Updates {
		whole.Update(u.Index, u.Delta)
		if u.Index%2 == 0 {
			a.Update(u.Index, u.Delta)
		} else {
			b.Update(u.Index, u.Delta)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Units() != whole.Units() {
		t.Fatalf("units: merged %d, single-stream %d", a.Units(), whole.Units())
	}
	la, lw := a.levels[0], whole.levels[0]
	if la == nil || lw == nil {
		t.Fatal("level 0 missing; base too small for the exact-regime test")
	}
	if la.pos != lw.pos || la.neg != lw.neg {
		t.Fatalf("level-0 counters: merged (%d,%d), single-stream (%d,%d)", la.pos, la.neg, lw.pos, lw.neg)
	}
	if a.Estimate() != whole.Estimate() {
		t.Fatalf("estimate: merged %v, single-stream %v", a.Estimate(), whole.Estimate())
	}
}

// TestMergeMorrisClockStaysAccurate: with the randomized Morris clock
// the merge is statistical; the merged estimate must stay within the
// estimator's envelope of the truth across repetitions.
func TestMergeMorrisClockStaysAccurate(t *testing.T) {
	s := gen.BoundedDeletion(gen.Config{N: 512, Items: 100000, Alpha: 2, Seed: 131})
	want := float64(s.Materialize().L1())
	good := 0
	const reps = 11
	for rep := 0; rep < reps; rep++ {
		a := New(rand.New(rand.NewSource(int64(200+rep))), 64)
		b := New(rand.New(rand.NewSource(int64(300+rep))), 64)
		for _, u := range s.Updates {
			if u.Index%2 == 0 {
				a.Update(u.Index, u.Delta)
			} else {
				b.Update(u.Index, u.Delta)
			}
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Estimate()-want) < 0.35*want {
			good++
		}
	}
	if good < reps*2/3 {
		t.Fatalf("merged Morris-clock estimate within 35%% only %d/%d times", good, reps)
	}
}

// TestMergeRejectsMismatchedBase.
func TestMergeRejectsMismatchedBase(t *testing.T) {
	a := New(rand.New(rand.NewSource(1)), 64)
	if err := a.Merge(New(rand.New(rand.NewSource(1)), 128)); err == nil {
		t.Fatal("merging different interval bases should fail")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("merging nil should fail")
	}
}

// TestCloneIsolated: the clone's clock and levels are private copies.
func TestCloneIsolated(t *testing.T) {
	a := NewExactClock(rand.New(rand.NewSource(5)), 1<<20)
	for i := 0; i < 100; i++ {
		a.Update(uint64(i), 1)
	}
	c := a.Clone()
	for i := 0; i < 500; i++ {
		c.Update(uint64(i), 1)
	}
	if a.Units() != 100 {
		t.Fatalf("original units %d after clone mutation, want 100", a.Units())
	}
	if c.Units() != 600 {
		t.Fatalf("clone units %d, want 600", c.Units())
	}
}
