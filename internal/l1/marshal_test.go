package l1

import (
	"math/rand"
	"testing"
)

func TestAlphaEstimatorMarshalRoundTrip(t *testing.T) {
	for _, exact := range []bool{false, true} {
		var a *AlphaEstimator
		if exact {
			a = NewExactClock(rand.New(rand.NewSource(1)), 1<<16)
		} else {
			a = New(rand.New(rand.NewSource(1)), 1<<16)
		}
		for i := uint64(0); i < 500; i++ {
			a.Update(i, 3)
		}
		data, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		restored := &AlphaEstimator{}
		if err := restored.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if restored.Estimate() != a.Estimate() {
			t.Fatalf("exact=%v: Estimate differs: %v vs %v", exact, restored.Estimate(), a.Estimate())
		}
		if restored.Units() != a.Units() || restored.LiveLevels() != a.LiveLevels() {
			t.Fatalf("exact=%v: state differs after round trip", exact)
		}
		if restored.base != a.base || restored.maxCount != a.maxCount {
			t.Fatalf("exact=%v: diagnostics differ", exact)
		}
		// The restored estimator merges where a clone would.
		peer := NewExactClock(rand.New(rand.NewSource(9)), 1<<16)
		if exact {
			peer.Update(1, 10)
			if err := peer.Merge(restored); err != nil {
				t.Fatalf("merge of restored estimator rejected: %v", err)
			}
		}
	}
}

func TestAlphaEstimatorUnmarshalRejectsGarbage(t *testing.T) {
	a := New(rand.New(rand.NewSource(2)), 64)
	a.Update(1, 5)
	data, _ := a.MarshalBinary()
	fresh := &AlphaEstimator{}
	if err := fresh.UnmarshalBinary(nil); err == nil {
		t.Error("accepted nil")
	}
	if err := fresh.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Error("accepted truncated payload")
	}
	bad := append([]byte(nil), data...)
	bad[2] = 42
	if err := fresh.UnmarshalBinary(bad); err == nil {
		t.Error("accepted wrong version")
	}
}
