package l1

import (
	"errors"
	"math/rand"
	"sort"

	"repro/internal/morris"
	"repro/internal/wire"
)

// Wire layout of the Figure 4 estimator: interval base, the clock (a
// tagged union: Morris counter or exact position counter), and the live
// (c+, c-) pairs per level. The restored instance reseeds its binomial-
// thinning rng deterministically from the payload; counters are exact.
const (
	estimatorMagic = "L1"
	formatV1       = 1

	clockMorris = 0
	clockExact  = 1
)

// MarshalBinary encodes the estimator.
func (a *AlphaEstimator) MarshalBinary() ([]byte, error) {
	w := wire.NewWriter(estimatorMagic, formatV1)
	w.I64(a.base)
	switch c := a.clock.(type) {
	case morrisClock:
		v, max := c.c.State()
		w.U8(clockMorris)
		w.U8(v)
		w.U8(max)
	case *exactClock:
		w.U8(clockExact)
		w.I64(c.t)
		w.I64(c.max)
	default:
		return nil, errors.New("l1: unknown clock implementation")
	}
	w.I64(a.maxCount)
	w.I64(a.units)
	js := make([]int, 0, len(a.levels))
	for j := range a.levels {
		js = append(js, j)
	}
	sort.Ints(js)
	w.U32(uint32(len(js)))
	for _, j := range js {
		lv := a.levels[j]
		w.U32(uint32(j))
		w.I64(lv.pos)
		w.I64(lv.neg)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores an estimator serialized by MarshalBinary. On
// failure the receiver is left unchanged.
func (a *AlphaEstimator) UnmarshalBinary(data []byte) error {
	rd, v, err := wire.NewReader(data, estimatorMagic)
	if err != nil {
		return err
	}
	if v != formatV1 {
		return errors.New("l1: unsupported AlphaEstimator format version")
	}
	base := rd.I64()
	rng := rand.New(rand.NewSource(wire.Seed(data)))
	var clock Clock
	switch tag := rd.U8(); tag {
	case clockMorris:
		mv := rd.U8()
		mmax := rd.U8()
		if mv > 63 || mmax > 63 || mv > mmax {
			return errors.New("l1: bad Morris clock state")
		}
		clock = morrisClock{morris.Restore(rng, mv, mmax)}
	case clockExact:
		t := rd.I64()
		max := rd.I64()
		if t < 0 || max < t {
			return errors.New("l1: bad exact clock state")
		}
		clock = &exactClock{t: t, max: max}
	default:
		if rd.Err() != nil {
			return rd.Err()
		}
		return errors.New("l1: unknown clock tag")
	}
	maxCount := rd.I64()
	units := rd.I64()
	nLevels := int(rd.U32())
	if rd.Err() != nil {
		return rd.Err()
	}
	if base < 4 {
		return errors.New("l1: bad interval base")
	}
	if nLevels < 0 || nLevels > rd.Remaining() {
		return errors.New("l1: bad level count")
	}
	levels := make(map[int]*level, nLevels)
	for i := 0; i < nLevels; i++ {
		j := int(rd.U32())
		pos := rd.I64()
		neg := rd.I64()
		if rd.Err() != nil {
			return rd.Err()
		}
		if j > 62 || pos < 0 || neg < 0 {
			return errors.New("l1: bad level counters")
		}
		if _, dup := levels[j]; dup {
			return errors.New("l1: duplicate level")
		}
		levels[j] = &level{j: j, pos: pos, neg: neg}
	}
	if err := rd.Done(); err != nil {
		return err
	}
	a.base = base
	a.clock = clock
	a.levels = levels
	a.rng = rng
	a.maxCount = maxCount
	a.units = units
	return nil
}
