// Package l1 implements the paper's L1 estimation algorithms for
// alpha-property streams (Section 5):
//
//   - AlphaEstimator is Figure 4 / Theorem 6: a strict-turnstile
//     (1 +- eps) L1 estimator in O(log(alpha/eps) + log(1/delta) +
//     log log n) bits. It samples unit updates at exponentially decaying
//     rates driven by a Morris-counter clock: intervals I_j =
//     [s^j, s^{j+2}] each hold a (c+, c-) pair sampling at rate s^-j, and
//     the oldest surviving pair answers the query. On a strict turnstile
//     stream sum_i f_i = ||f||_1, so the scaled difference of two small
//     counters suffices — this is where the log(n) of a dense counter
//     collapses to log(alpha/eps).
//
//   - The general turnstile estimator of Theorem 8 lives in package
//     cauchy (SampledSketch); this package re-exports a constructor so
//     callers find both variants in one place.
//
// An exact-clock variant (Morris counter replaced by a log(n)-bit
// position counter) is provided for the DESIGN.md ablation AB3.
package l1

import (
	"fmt"
	"math/rand"

	"repro/internal/cauchy"
	"repro/internal/core"
	"repro/internal/morris"
	"repro/internal/nt"
	"repro/internal/sample"
	"repro/internal/stream"
)

// Clock abstracts the stream-position estimate: Figure 4 uses a Morris
// counter (O(log log n) bits); the ablation uses an exact counter
// (O(log n) bits).
type Clock interface {
	Advance(n int64)
	Now() int64
	SpaceBits() int64
	// Clone copies the clock state; the copy draws any randomness it
	// needs from rng (snapshot support for merge-on-query).
	Clone(rng *rand.Rand) Clock
}

// morrisClock adapts morris.Counter to Clock.
type morrisClock struct{ c *morris.Counter }

func (m morrisClock) Advance(n int64)  { m.c.Add(n) }
func (m morrisClock) Now() int64       { return m.c.Estimate() }
func (m morrisClock) SpaceBits() int64 { return m.c.SpaceBits() }
func (m morrisClock) Clone(rng *rand.Rand) Clock {
	return morrisClock{m.c.Clone(rng)}
}

// exactClock is the ablation clock.
type exactClock struct {
	t   int64
	max int64
}

func (e *exactClock) Advance(n int64) { e.t += n; e.max = e.t }
func (e *exactClock) Now() int64      { return e.t }
func (e *exactClock) SpaceBits() int64 {
	return int64(nt.BitsFor(uint64(e.max)))
}
func (e *exactClock) Clone(*rand.Rand) Clock {
	return &exactClock{t: e.t, max: e.max}
}

// AlphaEstimator is the Figure 4 structure.
type AlphaEstimator struct {
	base   int64 // s = poly(alpha * log(n) / eps), laptop-scaled
	clock  Clock
	levels map[int]*level
	rng    *rand.Rand

	maxCount int64
	units    int64 // exact unit count, kept only for tests/metrics
}

type level struct {
	j        int
	pos, neg int64
}

// New builds the estimator with interval base s (the paper's
// s = O(alpha^2 delta^-1 log^3(n) / eps^2); pass RecommendedBase for a
// laptop-scaled default) and a Morris clock.
func New(rng *rand.Rand, base int64) *AlphaEstimator {
	return newWithClock(rng, base, morrisClock{morris.New(rng)})
}

// NewExactClock builds the ablation variant with an exact position
// counter instead of the Morris counter.
func NewExactClock(rng *rand.Rand, base int64) *AlphaEstimator {
	return newWithClock(rng, base, &exactClock{})
}

func newWithClock(rng *rand.Rand, base int64, clock Clock) *AlphaEstimator {
	if base < 4 {
		panic(fmt.Sprintf("l1: interval base must be >= 4, got %d", base))
	}
	return &AlphaEstimator{
		base:   base,
		clock:  clock,
		levels: make(map[int]*level),
		rng:    rng,
	}
}

// RecommendedBase scales the paper's s = O(alpha^2 log^3(n) / (delta
// eps^2)) to a usable sample budget: quadratic in alpha/eps with a log n
// factor.
func RecommendedBase(alpha, eps, delta float64, n uint64) int64 {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("l1: eps and delta must be in (0,1)")
	}
	if alpha < 1 {
		alpha = 1
	}
	v := alpha * alpha / (eps * eps * delta) * float64(nt.Log2Ceil(n)+1)
	if v < 16 {
		v = 16
	}
	if v > 1<<40 {
		v = 1 << 40
	}
	return int64(v)
}

// Update feeds an update; |delta| > 1 conceptually expands into unit
// updates, processed in chunks: the clock advances by whole sub-chunks
// (Morris's Add walks geometric gaps exactly) and each live level thins
// the sub-chunk with one binomial draw. Sub-chunks are bounded by a
// quarter of the current clock estimate so the level schedule is
// re-synced at least as often as the intervals can move — the same
// granularity tolerance the psi-slack of Theorem 6's analysis already
// absorbs.
func (a *AlphaEstimator) Update(i uint64, delta int64) {
	_ = i // the L1 estimator is index-oblivious: it sums signed samples
	mag := delta
	sign := int64(1)
	if mag < 0 {
		mag = -mag
		sign = -1
	}
	for mag > 0 {
		chunk := a.clock.Now()/4 + 1
		if chunk > mag {
			chunk = mag
		}
		a.clock.Advance(chunk)
		a.units += chunk
		a.syncLevels()
		for _, lv := range a.levels {
			var cnt int64
			if lv.j == 0 {
				cnt = chunk
			} else {
				cnt = sample.Binomial(a.rng, chunk, 1/float64(sample.Pow(a.base, lv.j)))
			}
			if cnt == 0 {
				continue
			}
			if sign > 0 {
				lv.pos += cnt
				if lv.pos > a.maxCount {
					a.maxCount = lv.pos
				}
			} else {
				lv.neg += cnt
				if lv.neg > a.maxCount {
					a.maxCount = lv.neg
				}
			}
		}
		mag -= chunk
	}
}

// UpdateBatch applies a batch of updates through the columnar pipeline
// (see UpdateColumns).
func (a *AlphaEstimator) UpdateBatch(batch []stream.Update) {
	b := core.GetBatch()
	b.LoadUpdates(batch)
	a.UpdateColumns(b)
	core.PutBatch(b)
}

// UpdateColumns consumes a pre-planned columnar batch. The estimator
// is index-oblivious and every chunk draws Morris/binomial rng, so
// application stays per-item in column order — the rng sequence (and
// therefore the state) is identical to the scalar path.
func (a *AlphaEstimator) UpdateColumns(b *core.Batch) {
	for j, i := range b.Idx {
		a.Update(i, b.Delta[j])
	}
}

// Merge folds another estimator with the same interval base into this
// one: the clock advances by the other's position estimate, level pairs
// live in both at the same index j add their (c+, c-) counters (both
// sample at rate s^-j), level pairs live in only one survive, and the
// schedule re-syncs at the combined position. In the early regime where
// only level 0 is live (combined position below the base), counters are
// exact signed unit counts and the merge is exact.
func (a *AlphaEstimator) Merge(other *AlphaEstimator) error {
	if other == nil {
		return fmt.Errorf("l1: merge with nil AlphaEstimator")
	}
	if a.base != other.base {
		return fmt.Errorf("l1: merging estimators with different interval bases (%d vs %d)", a.base, other.base)
	}
	a.clock.Advance(other.clock.Now())
	a.units += other.units
	for j, olv := range other.levels {
		if lv, ok := a.levels[j]; ok {
			lv.pos += olv.pos
			lv.neg += olv.neg
		} else {
			a.levels[j] = &level{j: j, pos: olv.pos, neg: olv.neg}
		}
	}
	if other.maxCount > a.maxCount {
		a.maxCount = other.maxCount
	}
	a.syncLevels()
	return nil
}

// Clone returns a deep copy with a fresh rng stream.
func (a *AlphaEstimator) Clone() *AlphaEstimator {
	rng := rand.New(rand.NewSource(a.rng.Int63()))
	c := &AlphaEstimator{
		base:     a.base,
		clock:    a.clock.Clone(rng),
		levels:   make(map[int]*level, len(a.levels)),
		rng:      rng,
		maxCount: a.maxCount,
		units:    a.units,
	}
	for j, lv := range a.levels {
		c.levels[j] = &level{j: lv.j, pos: lv.pos, neg: lv.neg}
	}
	return c
}

// syncLevels keeps exactly the levels the (approximate) clock says are
// live: Figure 4 steps 2-4.
func (a *AlphaEstimator) syncLevels() {
	lo, hi := sample.ActiveLevels(a.clock.Now(), a.base)
	for j := range a.levels {
		if j < lo || j > hi {
			delete(a.levels, j)
		}
	}
	for j := lo; j <= hi; j++ {
		if _, ok := a.levels[j]; !ok {
			a.levels[j] = &level{j: j}
		}
	}
}

// Estimate returns the scaled difference s^{j*} (c+ - c-) of the oldest
// surviving counter pair (Figure 4 step 5). On a strict turnstile
// alpha-property stream this is a (1 +- eps) estimate of ||f||_1.
func (a *AlphaEstimator) Estimate() float64 {
	var oldest *level
	for _, lv := range a.levels {
		if oldest == nil || lv.j < oldest.j {
			oldest = lv
		}
	}
	if oldest == nil {
		return 0
	}
	return float64(sample.Pow(a.base, oldest.j)) * float64(oldest.pos-oldest.neg)
}

// LiveLevels returns the number of live counter pairs (always <= 2).
func (a *AlphaEstimator) LiveLevels() int { return len(a.levels) }

// Units returns the exact unit-update count (test/metric support only;
// the algorithm itself never reads it).
func (a *AlphaEstimator) Units() int64 { return a.units }

// SpaceBits charges the clock, the (at most two) counter pairs at their
// observed widths, and the level index — the O(log(alpha/eps) +
// log log n) layout of Theorem 6.
func (a *AlphaEstimator) SpaceBits() int64 {
	perCounter := int64(nt.BitsFor(uint64(a.maxCount)))
	var counters int64
	for range a.levels {
		counters += 2 * perCounter
	}
	levelIndex := int64(2 * nt.BitsFor(uint64(len(a.levels)+2)))
	baseBits := int64(nt.BitsFor(uint64(a.base)))
	return a.clock.SpaceBits() + counters + levelIndex + baseBits
}

// NewGeneral returns the general-turnstile alpha-property L1 estimator
// of Theorem 8 (sampled Cauchy sketches; see package cauchy). r controls
// accuracy (r = Theta(1/eps^2)).
func NewGeneral(rng *rand.Rand, r, rPrime, k int, base int64, fpBits uint) *cauchy.SampledSketch {
	return cauchy.NewSampledSketch(rng, r, rPrime, k, base, fpBits)
}
