package shard

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stream"
)

// recorder counts applied updates and remembers their order.
type recorder struct {
	applied []stream.Update
	batches int
}

func (r *recorder) UpdateBatch(batch []stream.Update) {
	r.applied = append(r.applied, batch...)
	r.batches++
}

func TestWorkerAppliesInOrder(t *testing.T) {
	rec := &recorder{}
	w := New(rec, 2, nil)
	var want []stream.Update
	for b := 0; b < 10; b++ {
		batch := make([]stream.Update, 0, 16)
		for i := 0; i < 16; i++ {
			u := stream.Update{Index: uint64(b*16 + i), Delta: 1}
			batch = append(batch, u)
			want = append(want, u)
		}
		w.Send(batch)
	}
	w.Do(nil) // flush barrier
	if len(rec.applied) != len(want) {
		t.Fatalf("applied %d updates, want %d", len(rec.applied), len(want))
	}
	for i := range want {
		if rec.applied[i] != want[i] {
			t.Fatalf("update %d out of order: got %+v want %+v", i, rec.applied[i], want[i])
		}
	}
	w.Close()
}

// TestWorkerDoIsBarrier checks Do observes every previously sent batch.
func TestWorkerDoIsBarrier(t *testing.T) {
	rec := &recorder{}
	w := New(rec, 4, nil)
	for b := 0; b < 7; b++ {
		w.Send([]stream.Update{{Index: uint64(b), Delta: 1}})
	}
	var seen int
	w.Do(func() { seen = len(rec.applied) })
	if seen != 7 {
		t.Fatalf("Do observed %d applied updates, want 7", seen)
	}
	w.Close()
}

// slowIngester blocks until released, so the inbox can be filled.
type slowIngester struct {
	release chan struct{}
	n       atomic.Int64
}

func (s *slowIngester) UpdateBatch(batch []stream.Update) {
	<-s.release
	s.n.Add(int64(len(batch)))
}

// TestWorkerBackpressure: with a queue of 1 and a stalled ingester, a
// sender must block rather than queue unbounded batches.
func TestWorkerBackpressure(t *testing.T) {
	ing := &slowIngester{release: make(chan struct{})}
	w := New(ing, 1, nil)
	// First batch is picked up by the goroutine (stalls in UpdateBatch),
	// second fills the inbox; the third must block.
	w.Send([]stream.Update{{Index: 1, Delta: 1}})
	w.Send([]stream.Update{{Index: 2, Delta: 1}})
	blocked := make(chan struct{})
	go func() {
		w.Send([]stream.Update{{Index: 3, Delta: 1}})
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("third Send did not block on a full inbox")
	case <-time.After(50 * time.Millisecond):
	}
	close(ing.release) // drain
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Send still blocked after drain")
	}
	w.Do(nil)
	if got := ing.n.Load(); got != 3 {
		t.Fatalf("ingested %d updates, want 3", got)
	}
	w.Close()
}

// TestWorkerRecycle: applied batches come back through the recycle hook.
func TestWorkerRecycle(t *testing.T) {
	rec := &recorder{}
	var recycled atomic.Int64
	w := New(rec, 2, func(b []stream.Update) { recycled.Add(1) })
	for b := 0; b < 5; b++ {
		w.Send([]stream.Update{{Index: uint64(b), Delta: 1}})
	}
	w.Do(nil)
	if got := recycled.Load(); got != 5 {
		t.Fatalf("recycled %d batches, want 5", got)
	}
	w.Close()
}
