package shard

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// recorder counts applied updates and remembers their order.
type recorder struct {
	applied []stream.Update
	batches int
}

func (r *recorder) UpdateColumns(b *core.Batch) {
	for j, i := range b.Idx {
		r.applied = append(r.applied, stream.Update{Index: i, Delta: b.Delta[j]})
	}
	r.batches++
}

// planned builds a columnar batch from updates.
func planned(us ...stream.Update) *core.Batch {
	b := core.GetBatch()
	b.LoadUpdates(us)
	return b
}

func TestWorkerAppliesInOrder(t *testing.T) {
	rec := &recorder{}
	w := New(rec, 2, core.PutBatch)
	var want []stream.Update
	for b := 0; b < 10; b++ {
		batch := core.GetBatch()
		for i := 0; i < 16; i++ {
			u := stream.Update{Index: uint64(b*16 + i), Delta: 1}
			batch.Append(u.Index, u.Delta)
			want = append(want, u)
		}
		w.Send(batch)
	}
	w.Do(nil) // flush barrier
	if len(rec.applied) != len(want) {
		t.Fatalf("applied %d updates, want %d", len(rec.applied), len(want))
	}
	for i := range want {
		if rec.applied[i] != want[i] {
			t.Fatalf("update %d out of order: got %+v want %+v", i, rec.applied[i], want[i])
		}
	}
	w.Close()
}

// TestWorkerDoIsBarrier checks Do observes every previously sent batch.
func TestWorkerDoIsBarrier(t *testing.T) {
	rec := &recorder{}
	w := New(rec, 4, core.PutBatch)
	for b := 0; b < 7; b++ {
		w.Send(planned(stream.Update{Index: uint64(b), Delta: 1}))
	}
	var seen int
	w.Do(func() { seen = len(rec.applied) })
	if seen != 7 {
		t.Fatalf("Do observed %d applied updates, want 7", seen)
	}
	w.Close()
}

// slowIngester blocks until released, so the inbox can be filled.
type slowIngester struct {
	release chan struct{}
	n       atomic.Int64
}

func (s *slowIngester) UpdateColumns(b *core.Batch) {
	<-s.release
	s.n.Add(int64(b.Len()))
}

// TestWorkerBackpressure: with a queue of 1 and a stalled ingester, a
// sender must block rather than queue unbounded batches.
func TestWorkerBackpressure(t *testing.T) {
	ing := &slowIngester{release: make(chan struct{})}
	w := New(ing, 1, nil)
	// First batch is picked up by the goroutine (stalls in UpdateColumns),
	// second fills the inbox; the third must block.
	w.Send(planned(stream.Update{Index: 1, Delta: 1}))
	w.Send(planned(stream.Update{Index: 2, Delta: 1}))
	blocked := make(chan struct{})
	go func() {
		w.Send(planned(stream.Update{Index: 3, Delta: 1}))
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("third Send did not block on a full inbox")
	case <-time.After(50 * time.Millisecond):
	}
	close(ing.release) // drain
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Send still blocked after drain")
	}
	w.Do(nil)
	if got := ing.n.Load(); got != 3 {
		t.Fatalf("ingested %d updates, want 3", got)
	}
	w.Close()
}

// TestWorkerRecycle: applied batches come back through the recycle
// hook, and empty batches are recycled immediately rather than queued.
func TestWorkerRecycle(t *testing.T) {
	rec := &recorder{}
	var recycled atomic.Int64
	w := New(rec, 2, func(b *core.Batch) { recycled.Add(1) })
	for b := 0; b < 5; b++ {
		w.Send(planned(stream.Update{Index: uint64(b), Delta: 1}))
	}
	w.Send(core.GetBatch()) // empty: recycled without a queue round-trip
	w.Do(nil)
	if got := recycled.Load(); got != 6 {
		t.Fatalf("recycled %d batches, want 6", got)
	}
	if rec.batches != 5 {
		t.Fatalf("applied %d batches, want 5", rec.batches)
	}
	w.Close()
}
