// Package shard provides the single-writer worker that the sharded
// ingest engine (package engine) builds on. Every sketch in this
// library is single-goroutine by design — updates and queries share
// per-structure scratch — so parallel ingest means partitioning the
// stream across S structures, each owned by exactly one goroutine.
//
// A Worker owns one such structure set. It consumes columnar batches
// (core.Batch: the engine partitions incoming updates by computing
// every update's shard key in one batch hash evaluation, then
// scattering indices and deltas into per-shard columns) from a bounded
// channel (the bound IS the backpressure: when a shard falls behind,
// senders block instead of queueing unbounded memory) and executes
// closures in the owner goroutine between batches, which gives callers
// three primitives for free:
//
//   - a flush barrier: Do(func(){}) returns only after every batch sent
//     before it has been applied,
//   - race-free snapshots: Do(func(){ snap = structures.Clone() }) runs
//     serialized with ingest, so queries never observe a torn sketch, and
//   - snapshot-free point queries: Do(func(){ v = structures.Query(i) })
//     reads the live structure between batches — no clone, no merge.
//
// The worker deliberately knows nothing about which structures it
// feeds: it moves batches and closures, the engine supplies the
// Ingester.
package shard

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Ingester consumes pre-planned columnar batches. The engine's
// per-shard structure set implements it by fanning each batch to every
// enabled sketch; each sketch hashes the shared index column with its
// own batch evaluators and applies the columns to its counters.
type Ingester interface {
	UpdateColumns(b *core.Batch)
}

// message is one unit of work: exactly one of batch or do is set.
type message struct {
	batch *core.Batch
	do    func()
	done  chan struct{}
}

// Metrics is a worker's observability cell block: per-worker counters
// written only by the owner goroutine (apply side) or the sending
// goroutine (stall side). Each obs.Counter is cache-line padded, so
// adjacent workers' metrics never false-share. Under -tags noobs the
// whole struct is zero-size and every recording call compiles out.
type Metrics struct {
	// BatchesApplied and KeysApplied count work the owner goroutine has
	// finished applying (a flush barrier makes them exact totals).
	BatchesApplied obs.Counter
	KeysApplied    obs.Counter
	// BusyNanos accumulates time the owner goroutine spent inside
	// UpdateColumns — occupancy = BusyNanos / wall time.
	BusyNanos obs.Counter
	// SendStalls counts Sends that found the inbox full and had to
	// block — the backpressure signal.
	SendStalls obs.Counter
}

// Worker is a single-writer shard: one goroutine, one Ingester, one
// bounded inbox.
type Worker struct {
	in      chan message
	wg      sync.WaitGroup
	recycle func(*core.Batch)
	m       Metrics
}

// New starts a worker goroutine that feeds ing. queue is the inbox
// depth in batches (minimum 1) — the backpressure window. recycle, if
// non-nil, receives each batch after it has been applied so the caller
// can pool buffers; the worker never touches a batch afterwards.
func New(ing Ingester, queue int, recycle func(*core.Batch)) *Worker {
	return NewNamed(ing, queue, recycle, "")
}

// NewNamed is New with an observability name: when non-empty, the
// worker goroutine labels itself with the pprof label shard=name (CPU
// profiles attribute samples per shard) and wraps each batch apply in
// the execution-trace region "shard.apply" so `go tool trace` shows
// per-shard apply spans.
func NewNamed(ing Ingester, queue int, recycle func(*core.Batch), name string) *Worker {
	if queue < 1 {
		queue = 1
	}
	w := &Worker{in: make(chan message, queue), recycle: recycle}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		if name != "" {
			obs.LabelGoroutine("shard", name)
		}
		ctx := context.Background()
		for m := range w.in {
			if m.batch != nil {
				start := obs.Now()
				span := obs.StartRegion(ctx, "shard.apply")
				ing.UpdateColumns(m.batch)
				span.End()
				w.m.BusyNanos.Add(obs.Now() - start)
				w.m.BatchesApplied.Inc()
				w.m.KeysApplied.Add(int64(m.batch.Len()))
				if w.recycle != nil {
					w.recycle(m.batch)
				}
			}
			if m.do != nil {
				m.do()
				close(m.done)
			}
		}
	}()
	return w
}

// Metrics returns the worker's counters; readers may load them at any
// time (quiesce with a flush barrier first for exact totals).
func (w *Worker) Metrics() *Metrics { return &w.m }

// QueueDepth reports the number of messages waiting in the inbox right
// now; QueueCap its bound. Depth ≈ cap sustained means the shard is the
// bottleneck and senders are stalling.
func (w *Worker) QueueDepth() int { return len(w.in) }

// QueueCap reports the inbox bound.
func (w *Worker) QueueCap() int { return cap(w.in) }

// Send hands a columnar batch to the worker, transferring ownership.
// It blocks while the inbox is full — the backpressure that keeps a
// slow shard from accumulating unbounded queued batches. Each Send
// that finds the inbox full counts one stall in Metrics.
func (w *Worker) Send(b *core.Batch) {
	if b == nil || b.Len() == 0 {
		if b != nil && w.recycle != nil {
			w.recycle(b)
		}
		return
	}
	msg := message{batch: b}
	if obs.Enabled {
		// Try-then-block: the fast path is one select that succeeds
		// immediately; only a full inbox pays the second (blocking) send,
		// and that Send was going to block anyway.
		select {
		case w.in <- msg:
			return
		default:
			w.m.SendStalls.Inc()
		}
	}
	w.in <- msg
}

// Do runs f in the worker goroutine after every previously sent batch
// has been applied, and returns once f has run. With f == nil it is a
// pure flush barrier.
func (w *Worker) Do(f func()) {
	if f == nil {
		f = func() {}
	}
	done := make(chan struct{})
	w.in <- message{do: f, done: done}
	<-done
}

// DoAsync enqueues f like Do but returns immediately with the channel
// that closes when f has run — the fan-out form used to snapshot many
// shards concurrently.
func (w *Worker) DoAsync(f func()) <-chan struct{} {
	if f == nil {
		f = func() {}
	}
	done := make(chan struct{})
	w.in <- message{do: f, done: done}
	return done
}

// Close stops the worker after draining every queued message and waits
// for the goroutine to exit. The Worker must not be used afterwards.
func (w *Worker) Close() {
	close(w.in)
	w.wg.Wait()
}
