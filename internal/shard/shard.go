// Package shard provides the single-writer worker that the sharded
// ingest engine (package engine) builds on. Every sketch in this
// library is single-goroutine by design — updates and queries share
// per-structure scratch — so parallel ingest means partitioning the
// stream across S structures, each owned by exactly one goroutine.
//
// A Worker owns one such structure set. It consumes batches of updates
// from a bounded channel (the bound IS the backpressure: when a shard
// falls behind, senders block instead of queueing unbounded memory) and
// executes closures in the owner goroutine between batches, which gives
// callers two primitives for free:
//
//   - a flush barrier: Do(func(){}) returns only after every batch sent
//     before it has been applied, and
//   - race-free snapshots: Do(func(){ snap = structures.Clone() }) runs
//     serialized with ingest, so queries never observe a torn sketch.
//
// The worker deliberately knows nothing about which structures it
// feeds: it moves batches and closures, the engine supplies the
// Ingester.
package shard

import (
	"sync"

	"repro/internal/stream"
)

// Ingester consumes batches of updates. The engine's per-shard
// structure set implements it by fanning each batch to every enabled
// sketch.
type Ingester interface {
	UpdateBatch(batch []stream.Update)
}

// message is one unit of work: exactly one of batch or do is set.
type message struct {
	batch []stream.Update
	do    func()
	done  chan struct{}
}

// Worker is a single-writer shard: one goroutine, one Ingester, one
// bounded inbox.
type Worker struct {
	in      chan message
	wg      sync.WaitGroup
	recycle func([]stream.Update)
}

// New starts a worker goroutine that feeds ing. queue is the inbox
// depth in batches (minimum 1) — the backpressure window. recycle, if
// non-nil, receives each batch slice after it has been applied so the
// caller can pool buffers; the worker never touches a batch afterwards.
func New(ing Ingester, queue int, recycle func([]stream.Update)) *Worker {
	if queue < 1 {
		queue = 1
	}
	w := &Worker{in: make(chan message, queue), recycle: recycle}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for m := range w.in {
			if m.batch != nil {
				ing.UpdateBatch(m.batch)
				if w.recycle != nil {
					w.recycle(m.batch)
				}
			}
			if m.do != nil {
				m.do()
				close(m.done)
			}
		}
	}()
	return w
}

// Send hands a batch to the worker, transferring ownership of the
// slice. It blocks while the inbox is full — the backpressure that
// keeps a slow shard from accumulating unbounded queued batches.
func (w *Worker) Send(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	w.in <- message{batch: batch}
}

// Do runs f in the worker goroutine after every previously sent batch
// has been applied, and returns once f has run. With f == nil it is a
// pure flush barrier.
func (w *Worker) Do(f func()) {
	if f == nil {
		f = func() {}
	}
	done := make(chan struct{})
	w.in <- message{do: f, done: done}
	<-done
}

// DoAsync enqueues f like Do but returns immediately with the channel
// that closes when f has run — the fan-out form used to snapshot many
// shards concurrently.
func (w *Worker) DoAsync(f func()) <-chan struct{} {
	if f == nil {
		f = func() {}
	}
	done := make(chan struct{})
	w.in <- message{do: f, done: done}
	return done
}

// Close stops the worker after draining every queued message and waits
// for the goroutine to exit. The Worker must not be used afterwards.
func (w *Worker) Close() {
	close(w.in)
	w.wg.Wait()
}
