//go:build !noobs

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metric readbacks and renders them on demand.
// Registration stores a closure, not a value: the registry reads
// whatever the metric reports at scrape time, so live structures
// (queue depths, histogram state) need no push step. Registration is
// cheap and scrape-time-only — nothing on the recording hot path ever
// touches the registry or its mutex.
type Registry struct {
	mu      sync.Mutex
	metrics []*metricEntry
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

type metricEntry struct {
	name   string
	help   string
	owner  string
	kind   metricKind
	labels []Label
	value  func() int64             // counter / gauge
	hist   func() HistogramSnapshot // histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry: package-level metrics (the
// columnar arena, the kernel dispatch table) register here at init, and
// Handler() serves it. Engines expose their per-instance metrics into
// it (or into a private registry) via engine.ExposeMetrics.
var Default = NewRegistry()

// validName enforces the Prometheus metric-name grammar on
// registration, where a typo is a programming error worth a panic —
// not silently unscrapable output.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(e *metricEntry) {
	if !validName(e.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", e.name))
	}
	r.mu.Lock()
	r.metrics = append(r.metrics, e)
	r.mu.Unlock()
}

// CounterFunc registers a counter readback. owner groups metrics for
// RemoveOwner ("" for process-lifetime metrics that never unregister).
func (r *Registry) CounterFunc(owner, name, help string, f func() int64, labels ...Label) {
	r.register(&metricEntry{name: name, help: help, owner: owner, kind: counterKind, labels: labels, value: f})
}

// GaugeFunc registers a gauge readback.
func (r *Registry) GaugeFunc(owner, name, help string, f func() int64, labels ...Label) {
	r.register(&metricEntry{name: name, help: help, owner: owner, kind: gaugeKind, labels: labels, value: f})
}

// HistogramFunc registers a histogram readback.
func (r *Registry) HistogramFunc(owner, name, help string, f func() HistogramSnapshot, labels ...Label) {
	r.register(&metricEntry{name: name, help: help, owner: owner, kind: histogramKind, labels: labels, hist: f})
}

// RemoveOwner unregisters every metric registered under owner — how an
// engine withdraws its per-instance metrics on Close so a long-lived
// scrape surface does not accumulate dead instances.
func (r *Registry) RemoveOwner(owner string) {
	if owner == "" {
		return
	}
	r.mu.Lock()
	kept := r.metrics[:0]
	for _, e := range r.metrics {
		if e.owner != owner {
			kept = append(kept, e)
		}
	}
	// Nil the tail so dropped entries (and their closures) release.
	for i := len(kept); i < len(r.metrics); i++ {
		r.metrics[i] = nil
	}
	r.metrics = kept
	r.mu.Unlock()
}

// snapshotEntries copies the entry list so rendering iterates without
// holding the lock (readback closures may themselves take locks).
func (r *Registry) snapshotEntries() []*metricEntry {
	r.mu.Lock()
	out := make([]*metricEntry, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelString(out[i].labels) < labelString(out[j].labels)
	})
	return out
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringWith renders labels plus one extra pair — the histogram
// bucket `le` label.
func labelStringWith(labels []Label, key, value string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: key, Value: value})
	return labelString(all)
}

// WriteMetrics renders the registry in the Prometheus text exposition
// format (text/plain; version 0.0.4). Histograms render cumulative
// `le` buckets with bounds in seconds, plus _sum (seconds) and _count.
func (r *Registry) WriteMetrics(w io.Writer) error {
	lastHeader := ""
	for _, e := range r.snapshotEntries() {
		if e.name != lastHeader {
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
			lastHeader = e.name
		}
		switch e.kind {
		case counterKind, gaugeKind:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", e.name, labelString(e.labels), e.value()); err != nil {
				return err
			}
		case histogramKind:
			s := e.hist()
			var cum int64
			for i, c := range s.Buckets {
				cum += c
				if c == 0 && i != NumHistBuckets-1 {
					continue // sparse output: emit only occupied buckets (+Inf always)
				}
				le := "+Inf"
				if i != NumHistBuckets-1 {
					le = strconv.FormatFloat(float64(HistBucketBound(i))/1e9, 'g', -1, 64)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, labelStringWith(e.labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", e.name, labelString(e.labels), float64(s.Sum)/1e9); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, labelString(e.labels), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonMetric is the machine-readable scrape form (?format=json): one
// entry per metric, histograms carried whole.
type jsonMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *int64            `json:"value,omitempty"`
	Hist   *jsonHistogram    `json:"histogram,omitempty"`
}

type jsonHistogram struct {
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	Buckets []int64 `json:"buckets"` // log2 ns buckets, index = bits.Len64(ns)
}

// WriteJSON renders the registry as a JSON array — the expvar-style
// consumption path for tooling that does not speak Prometheus text.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []jsonMetric
	for _, e := range r.snapshotEntries() {
		m := jsonMetric{Name: e.name, Kind: e.kind.String()}
		if len(e.labels) > 0 {
			m.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				m.Labels[l.Key] = l.Value
			}
		}
		switch e.kind {
		case counterKind, gaugeKind:
			v := e.value()
			m.Value = &v
		case histogramKind:
			s := e.hist()
			m.Hist = &jsonHistogram{Count: s.Count, SumNs: s.Sum, Buckets: s.Buckets[:]}
		}
		out = append(out, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler returns the HTTP exposition handler for this registry:
// Prometheus text by default, JSON with ?format=json (or an
// application/json Accept header). Mount it wherever the service
// exposes diagnostics, e.g. http.Handle("/metrics", reg.Handler()).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteMetrics(w)
	})
}

// Handler returns the exposition handler of the Default registry — the
// one-liner services mount: http.Handle("/metrics", obs.Handler()).
func Handler() http.Handler { return Default.Handler() }
