// Package obs is the engine-wide observability core: allocation-free,
// lock-free metric primitives (cache-line-padded counters, gauges,
// log2-bucketed latency histograms), a registry with a Prometheus-text
// / JSON HTTP exposition handler, and runtime/trace + pprof hooks — the
// substrate the sharded engine, the columnar arena and the kernel
// dispatch layer record into, and the surface the future aggregation
// services scrape.
//
// The package has two build flavors selected by the noobs build tag:
//
//   - the default build (metrics.go, registry.go, trace.go) records for
//     real: every primitive is an atomic cell (padded to its own cache
//     line where producers write concurrently), recording is a single
//     uncontended atomic RMW, and the registry renders whatever the
//     readback closures report at scrape time;
//   - `-tags noobs` (the *_noobs.go twins) compiles the whole layer
//     OUT: the primitives are zero-size structs with empty methods, the
//     clock reads nothing, registration stores nothing, and the handler
//     serves a single comment line. Callers keep identical source —
//     the instrumentation is worth zero bytes and zero cycles.
//
// Recording contract: Counter/Gauge/Histogram methods are safe for any
// number of concurrent writers and readers, never allocate, and never
// block. Snapshot readers (Load, Snapshot, the registry handler) see
// per-cell atomic consistency, not a cross-metric consistent cut —
// exactness across metrics requires the caller to quiesce writers
// first (the engine's Stats-after-Flush tests do exactly that).
//
// The histogram is log2-bucketed: an observation of d nanoseconds lands
// in bucket bits.Len64(d), i.e. bucket i spans [2^(i-1), 2^i) ns, which
// resolves one binary order of magnitude per bucket from 1ns to ~39h in
// NumHistBuckets cells. That is deliberately coarse: recording is one
// bits.Len64 plus two atomic adds, and latency distributions in this
// codebase spread across orders of magnitude (a routed point query is
// ~µs, a merged-view rebuild ~ms), which log buckets resolve and
// linear buckets do not.
package obs

import (
	"fmt"
	"math/bits"
	"time"
)

// NumHistBuckets is the bucket count of every Histogram: log2 buckets
// covering (0, 2^47) ns — sub-ns to ~39 hours — plus the underflow
// bucket 0 for zero/negative observations and a final catch-all.
const NumHistBuckets = 48

// histBucket maps a nanosecond observation to its bucket index.
func histBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumHistBuckets {
		return NumHistBuckets - 1
	}
	return b
}

// HistBucketBound returns the exclusive upper bound of bucket i in
// nanoseconds (2^i), and math.MaxInt64-like sentinel semantics are not
// needed: the last bucket's bound simply labels the catch-all.
func HistBucketBound(i int) int64 { return int64(1) << uint(i) }

// HistogramSnapshot is a point-in-time copy of a Histogram, the form
// the registry renders and engine.Stats embeds. The zero value is a
// valid empty snapshot (and is what the noobs build always returns).
type HistogramSnapshot struct {
	// Count is the number of observations, Sum their total in
	// nanoseconds.
	Count int64
	Sum   int64
	// Buckets[i] counts observations in [2^(i-1), 2^i) ns; Buckets[0]
	// holds zero/negative observations, the last bucket everything at or
	// beyond its lower bound.
	Buckets [NumHistBuckets]int64
}

// Mean returns the average observed duration, 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of
// the observed durations: the upper bound of the first bucket whose
// cumulative count reaches q*Count. Resolution is one binary order of
// magnitude — fit for "p99 is ~2ms", not for microbenchmarking.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Ceiling: the q-quantile is the smallest observation with at least
	// ceil(q*Count) observations at or below it.
	target := int64(q * float64(s.Count))
	if float64(target) < q*float64(s.Count) {
		target++
	}
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			return time.Duration(HistBucketBound(i))
		}
	}
	return time.Duration(HistBucketBound(NumHistBuckets - 1))
}

// String renders a compact one-line summary for logs and tables.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "count=0"
	}
	return fmt.Sprintf("count=%d mean=%v p50<=%v p99<=%v",
		s.Count, s.Mean(), s.Quantile(0.5), s.Quantile(0.99))
}

// Label is one metric label pair; the registry renders labels in
// registration order (callers keep them sorted if they care).
type Label struct {
	Key   string
	Value string
}
