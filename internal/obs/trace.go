//go:build !noobs

package obs

import (
	"context"
	"runtime/pprof"
	"runtime/trace"
)

// Span is an execution-trace region handle. It is a value type holding
// one pointer, so starting and ending a span allocates nothing when
// tracing is off and only the trace package's own region record when it
// is on. The zero Span is a valid no-op.
type Span struct {
	r *trace.Region
}

// StartRegion opens a trace region named name in ctx if execution
// tracing is active (go test -trace, runtime/trace.Start). When tracing
// is off this is a single predictable-false branch.
func StartRegion(ctx context.Context, name string) Span {
	if !trace.IsEnabled() {
		return Span{}
	}
	return Span{r: trace.StartRegion(ctx, name)}
}

// End closes the span; safe on the zero Span.
func (s Span) End() {
	if s.r != nil {
		s.r.End()
	}
}

// Task is an execution-trace task handle grouping related regions
// (e.g. one merged-view rebuild and its per-shard copy regions). The
// zero Task is a valid no-op whose Context returns nil.
type Task struct {
	ctx context.Context
	t   *trace.Task
}

// StartTask opens a trace task when tracing is active.
func StartTask(ctx context.Context, name string) Task {
	if !trace.IsEnabled() {
		return Task{ctx: ctx}
	}
	tctx, t := trace.NewTask(ctx, name)
	return Task{ctx: tctx, t: t}
}

// Context returns the task-scoped context for nested regions.
func (t Task) Context() context.Context { return t.ctx }

// End closes the task; safe on the zero Task.
func (t Task) End() {
	if t.t != nil {
		t.t.End()
	}
}

// LabelGoroutine tags the calling goroutine with a pprof label so CPU
// profiles and goroutine dumps attribute samples to it — the shard
// workers call this once at start with their shard index. The label
// sticks for the goroutine's lifetime.
func LabelGoroutine(key, value string) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels(key, value)))
}
