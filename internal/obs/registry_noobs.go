//go:build noobs

package obs

import (
	"io"
	"net/http"
)

// Registry is compiled out: registration stores nothing and rendering
// emits nothing, so engine.ExposeMetrics and the package-level init
// registrations in core/hash cost zero under -tags noobs.
type Registry struct{}

// NewRegistry returns the no-op registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the (no-op) process-wide registry.
var Default = NewRegistry()

func (r *Registry) CounterFunc(owner, name, help string, f func() int64, labels ...Label) {}
func (r *Registry) GaugeFunc(owner, name, help string, f func() int64, labels ...Label)   {}
func (r *Registry) HistogramFunc(owner, name, help string, f func() HistogramSnapshot, labels ...Label) {
}
func (r *Registry) RemoveOwner(owner string) {}

// WriteMetrics writes the disabled marker so scrapers see an explicit
// signal rather than an empty page.
func (r *Registry) WriteMetrics(w io.Writer) error {
	_, err := io.WriteString(w, disabledBody)
	return err
}

// WriteJSON writes an empty JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	_, err := io.WriteString(w, "[]\n")
	return err
}

const disabledBody = "# observability disabled (built with -tags noobs)\n"

// Handler serves the disabled marker.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, disabledBody)
	})
}

// Handler returns the Default registry's handler.
func Handler() http.Handler { return Default.Handler() }
