//go:build noobs

package obs

// This file is the `-tags noobs` twin of metrics.go: every primitive is
// a zero-size struct with empty methods, so the instrumentation calls
// threaded through the engine, shard workers, arena and kernel dispatch
// compile to nothing — no atomic traffic, no clock reads, no state.

// Enabled reports whether this build records metrics; constant false
// here so guarded blocks dead-code-eliminate.
const Enabled = false

// Now returns 0 without reading any clock.
func Now() int64 { return 0 }

// Counter is compiled out; all methods are no-ops and Load reports 0.
type Counter struct{}

func (c *Counter) Inc()        {}
func (c *Counter) Add(n int64) {}
func (c *Counter) Load() int64 { return 0 }

// Gauge is compiled out; all methods are no-ops and Load reports 0.
type Gauge struct{}

func (g *Gauge) Set(v int64) {}
func (g *Gauge) Add(n int64) {}
func (g *Gauge) Load() int64 { return 0 }

// Histogram is compiled out; recording is a no-op and Snapshot returns
// the empty snapshot.
type Histogram struct{}

func (h *Histogram) Observe(ns int64)            {}
func (h *Histogram) ObserveSince(start int64)    {}
func (h *Histogram) Snapshot() HistogramSnapshot { return HistogramSnapshot{} }
