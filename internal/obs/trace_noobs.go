//go:build noobs

package obs

import "context"

// Span is compiled out; StartRegion and End are no-ops.
type Span struct{}

// StartRegion returns the no-op span.
func StartRegion(ctx context.Context, name string) Span { return Span{} }

// End does nothing.
func (s Span) End() {}

// Task is compiled out; Context returns the context unchanged.
type Task struct {
	ctx context.Context
}

// StartTask returns a no-op task carrying ctx.
func StartTask(ctx context.Context, name string) Task { return Task{ctx: ctx} }

// Context returns the context StartTask was given.
func (t Task) Context() context.Context { return t.ctx }

// End does nothing.
func (t Task) End() {}

// LabelGoroutine does nothing.
func LabelGoroutine(key, value string) {}
