//go:build !noobs

package obs

import (
	"sync/atomic"
	"time"
)

// Enabled reports whether this build records metrics (false under
// `-tags noobs`). It is a constant so `if obs.Enabled { ... }` blocks
// compile out entirely in the disabled build.
const Enabled = true

// epoch anchors Now(): readings are monotonic nanoseconds since package
// init (time.Since uses the runtime's monotonic clock, so wall-clock
// steps do not corrupt latency measurements).
var epoch = time.Now()

// Now returns the current monotonic timestamp in nanoseconds — the
// start token for Histogram.ObserveSince. Under noobs it returns 0
// without touching the clock.
func Now() int64 { return int64(time.Since(epoch)) }

// Counter is a monotonically increasing atomic counter padded to its
// own cache line, so counters laid out in arrays or adjacent struct
// fields do not false-share when distinct goroutines (one per shard)
// write them concurrently. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters are monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, live bytes).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a lock-free log2-bucketed latency histogram: recording
// is bits.Len64 plus two-or-three atomic adds, concurrent writers never
// block, and there is no resizing or rotation to coordinate. The zero
// value is ready to use. See the package comment for the bucket layout.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	_       [48]byte // keep count/sum off the first buckets' line
	buckets [NumHistBuckets]atomic.Int64
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[histBucket(ns)].Add(1)
}

// ObserveSince records the elapsed time since start, a token from
// Now(). Under noobs both sides are no-ops and no clock is read.
func (h *Histogram) ObserveSince(start int64) { h.Observe(Now() - start) }

// Snapshot copies the histogram. Concurrent recording may land between
// the field reads — the snapshot is per-cell atomic, not a consistent
// cut (Count can lag or lead the bucket total by in-flight writers).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}
