package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// The tests in this file run under both build flavors: where behavior
// differs (recorded values vs compiled-out zeros) they branch on the
// Enabled constant, so `go test ./internal/obs` and
// `go test -tags noobs ./internal/obs` both exercise their flavor.

func TestHistBucketMath(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{int64(1) << 50, NumHistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.ns); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	for i := 0; i < NumHistBuckets; i++ {
		if HistBucketBound(i) != int64(1)<<uint(i) {
			t.Fatalf("HistBucketBound(%d) = %d", i, HistBucketBound(i))
		}
	}
}

func TestHistogramSnapshotStats(t *testing.T) {
	var s HistogramSnapshot
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.String() != "count=0" {
		t.Fatalf("empty snapshot: mean=%v q50=%v str=%q", s.Mean(), s.Quantile(0.5), s.String())
	}
	// 3 observations at ~100ns (bucket 7, bound 128) and 1 at ~1ms
	// (bucket 20, bound ~1.05ms).
	s.Count = 4
	s.Sum = 3*100 + 1_000_000
	s.Buckets[histBucket(100)] = 3
	s.Buckets[histBucket(1_000_000)] = 1
	if got := s.Mean(); got != time.Duration(s.Sum/4) {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Quantile(0.5); got != time.Duration(128) {
		t.Errorf("Quantile(0.5) = %v, want 128ns", got)
	}
	if got := s.Quantile(0.99); got != time.Duration(HistBucketBound(histBucket(1_000_000))) {
		t.Errorf("Quantile(0.99) = %v", got)
	}
	if !strings.HasPrefix(s.String(), "count=4 ") {
		t.Errorf("String = %q", s.String())
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	h.Observe(100)
	h.ObserveSince(Now() - 1000)
	if Enabled {
		if got := c.Load(); got != 5 {
			t.Errorf("Counter.Load = %d, want 5", got)
		}
		if got := g.Load(); got != 5 {
			t.Errorf("Gauge.Load = %d, want 5", got)
		}
		s := h.Snapshot()
		if s.Count != 2 || s.Sum < 1100 {
			t.Errorf("Histogram snapshot = %+v", s)
		}
	} else {
		if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
			t.Error("noobs primitives must read zero")
		}
		if Now() != 0 {
			t.Error("noobs Now() must be 0")
		}
	}
}

// TestConcurrentRecording hammers one counter and one histogram from
// many goroutines; under -race this validates the lock-free recording
// contract, and under the enabled build the totals are exact.
func TestConcurrentRecording(t *testing.T) {
	const workers = 8
	const perWorker = 10_000
	var c Counter
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(seed + int64(i)%1000)
			}
		}(int64(w))
	}
	// Concurrent readers while writers run.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = c.Load()
				_ = h.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if !Enabled {
		return
	}
	if got := c.Load(); got != workers*perWorker {
		t.Errorf("Counter.Load = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("Histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var g Gauge
	var h Histogram
	c.Add(42)
	g.Set(3)
	h.Observe(100)
	r.CounterFunc("e1", "repro_test_total", "a test counter", c.Load, Label{"shard", "0"})
	r.GaugeFunc("e1", "repro_test_depth", "a test gauge", g.Load)
	r.HistogramFunc("e1", "repro_test_latency", "a test histogram", h.Snapshot)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	if !Enabled {
		if !strings.Contains(body, "observability disabled") {
			t.Fatalf("noobs handler body = %q", body)
		}
		return
	}
	for _, want := range []string{
		"# TYPE repro_test_total counter",
		`repro_test_total{shard="0"} 42`,
		"repro_test_depth 3",
		"# TYPE repro_test_latency histogram",
		`repro_test_latency_bucket{le="+Inf"} 1`,
		"repro_test_latency_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("text exposition missing %q in:\n%s", want, body)
		}
	}

	// JSON flavor.
	req = httptest.NewRequest("GET", "/metrics?format=json", nil)
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Errorf("json content-type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), `"repro_test_total"`) {
		t.Errorf("json exposition missing counter: %s", rec.Body.String())
	}

	// RemoveOwner withdraws everything registered under e1.
	r.RemoveOwner("e1")
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), "repro_test_total") {
		t.Error("RemoveOwner left metrics registered")
	}
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	if !Enabled {
		t.Skip("no validation under noobs")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid metric name")
		}
	}()
	NewRegistry().CounterFunc("", "bad name!", "", func() int64 { return 0 })
}

func TestTraceHelpersNoTrace(t *testing.T) {
	// Tracing is not active in tests; the helpers must be safe no-ops.
	task := StartTask(context.Background(), "t")
	span := StartRegion(task.Context(), "r")
	span.End()
	task.End()
	var zero Span
	zero.End()
	LabelGoroutine("k", "v")
}
