package bounded

import (
	"strings"
	"testing"
)

// qtestStream builds a small bounded-deletion workload for the public
// query-API tests: Zipf-ish inserts with partial deletions.
func qtestStream() []Update {
	var us []Update
	for r := 0; r < 40; r++ {
		for i := uint64(0); i < 200; i++ {
			d := int64(1)
			if i < 8 {
				d = 60 // heavy head
			}
			us = append(us, Update{Index: i * 31 % (1 << 12), Delta: d})
		}
	}
	for i := uint64(50); i < 120; i++ {
		us = append(us, Update{Index: i * 31 % (1 << 12), Delta: -20})
	}
	return us
}

// TestEstimateBatchMatchesScalar: the public batched readers answer
// bit-identically to per-index Estimate for both BatchPointQueriers,
// including duplicate indices and the scratch-reusing EstimateColumns
// form.
func TestEstimateBatchMatchesScalar(t *testing.T) {
	cfg := Config{N: 1 << 12, Eps: 0.05, Alpha: 4, Seed: 9}
	us := qtestStream()
	idxs := make([]uint64, 0, 300)
	for i := uint64(0); i < 1<<12; i += 17 {
		idxs = append(idxs, i)
	}
	idxs = append(idxs, idxs[0], idxs[0]) // adjacent duplicates
	idxs = append(idxs, idxs[:9]...)      // non-adjacent duplicates

	queriers := map[string]BatchPointQuerier{}
	hh := must(NewHeavyHitters(cfg))
	hh.UpdateBatch(us)
	queriers["HeavyHitters"] = hh
	l2 := must(NewL2HeavyHitters(cfg))
	l2.UpdateBatch(us)
	queriers["L2HeavyHitters"] = l2

	for name, q := range queriers {
		got := q.EstimateBatch(idxs)
		if len(got) != len(idxs) {
			t.Fatalf("%s: %d results for %d indices", name, len(got), len(idxs))
		}
		for j, i := range idxs {
			if want := q.Estimate(i); got[j] != want {
				t.Fatalf("%s: EstimateBatch[%d] (index %d) = %v, Estimate = %v", name, j, i, got[j], want)
			}
		}
		// The explicit plan: one batch, loaded once, queried through the
		// scratch-reusing column form.
		b := GetBatch()
		b.LoadKeys(idxs)
		cols := make([]float64, b.Len())
		q.EstimateColumns(b, cols)
		PutBatch(b)
		for j := range idxs {
			if cols[j] != got[j] {
				t.Fatalf("%s: EstimateColumns[%d] = %v, EstimateBatch = %v", name, j, cols[j], got[j])
			}
		}
	}
}

// TestCapabilityQueriers exercises each capability interface through
// its interface type — the generic-consumer path the engine and
// cmd/bdquery use.
func TestCapabilityQueriers(t *testing.T) {
	cfg := Config{N: 1 << 12, Eps: 0.1, Alpha: 4, Seed: 11}
	us := qtestStream()

	hh := must(NewHeavyHitters(cfg))
	hh.UpdateBatch(us)
	var set SetQuerier = hh
	if members := set.Members(); len(members) == 0 {
		t.Error("HeavyHitters.Members returned nothing on a heavy-headed stream")
	}

	l1 := must(NewL1Estimator(cfg))
	l1.UpdateBatch(us)
	var sc ScalarQuerier = l1
	if sc.Estimate() <= 0 {
		t.Error("L1 scalar estimate is nonpositive")
	}

	sup := must(NewSupportSampler(cfg, WithK(8)))
	for _, u := range us[:400] {
		sup.Update(u.Index, u.Delta)
	}
	var pr Prober = sup
	members := sup.Members()
	for _, i := range members {
		if !pr.Contains(i) {
			t.Errorf("Contains(%d) = false for a recovered member", i)
		}
	}

	smp := must(NewL1Sampler(cfg, WithCopies(8)))
	smp.UpdateBatch(us)
	var sq SampleQuerier = smp
	if res, ok := sq.Sample(); ok && res.Estimate == 0 {
		t.Error("successful sample carries a zero estimate")
	}
}

// TestZeroValueQueryDiagnostics: every query method on a zero-value
// structure must fail with a diagnostic naming the structure and the
// fix, instead of nil-panicking inside an internal package.
func TestZeroValueQueryDiagnostics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s on zero value did not panic", name)
				return
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "zero-value") || !strings.Contains(msg, "UnmarshalBinary") {
				t.Errorf("%s panic %q lacks the zero-value diagnostic", name, r)
			}
		}()
		f()
	}
	var hh HeavyHitters
	expectPanic("HeavyHitters.HeavyHitters", func() { hh.HeavyHitters() })
	expectPanic("HeavyHitters.Members", func() { hh.Members() })
	expectPanic("HeavyHitters.Estimate", func() { hh.Estimate(1) })
	expectPanic("HeavyHitters.EstimateBatch", func() { hh.EstimateBatch([]uint64{1}) })
	expectPanic("HeavyHitters.EstimateColumns", func() { hh.EstimateColumns(GetBatch(), nil) })
	expectPanic("HeavyHitters.SpaceBits", func() { hh.SpaceBits() })
	var l1 L1Estimator
	expectPanic("L1Estimator.Estimate", func() { l1.Estimate() })
	expectPanic("L1Estimator.SpaceBits", func() { l1.SpaceBits() })
	var l0 L0Estimator
	expectPanic("L0Estimator.Estimate", func() { l0.Estimate() })
	expectPanic("L0Estimator.LiveRows", func() { l0.LiveRows() })
	var smp L1Sampler
	expectPanic("L1Sampler.Sample", func() { smp.Sample() })
	var sup SupportSampler
	expectPanic("SupportSampler.Recover", func() { sup.Recover() })
	expectPanic("SupportSampler.Members", func() { sup.Members() })
	expectPanic("SupportSampler.Contains", func() { sup.Contains(1) })
	var ip InnerProduct
	expectPanic("InnerProduct.Estimate", func() { ip.Estimate() })
	var l2 L2HeavyHitters
	expectPanic("L2HeavyHitters.HeavyHitters", func() { l2.HeavyHitters() })
	expectPanic("L2HeavyHitters.Estimate", func() { l2.Estimate(1) })
	expectPanic("L2HeavyHitters.EstimateBatch", func() { l2.EstimateBatch([]uint64{1}) })
	var syn SyncSketch
	expectPanic("SyncSketch.SpaceBits", func() { syn.SpaceBits() })

	// A failed unmarshal leaves the receiver zero-valued — the guard
	// must still fire afterwards.
	var broken HeavyHitters
	if err := broken.UnmarshalBinary([]byte("not a sketch")); err == nil {
		t.Fatal("UnmarshalBinary accepted garbage")
	}
	expectPanic("HeavyHitters.Estimate after failed unmarshal", func() { broken.Estimate(1) })
}
