package bounded

import (
	"repro/internal/core"
)

// Batch is the columnar (structure-of-arrays) form of one ingest batch
// — the "plan" stage of the plan → hash → apply pipeline. The index
// and delta columns of every update live contiguously, so a
// structure's batch hash evaluators can fill whole bucket/sign columns
// in straight-line loops and the apply stage can sweep counter tables
// row-major. Producers that already hold columnar data (the engine's
// shard partitioner, network decoders) build a Batch directly and call
// UpdateColumns, skipping the array-of-structs detour entirely;
// UpdateBatch remains the convenience entry that plans an []Update
// into a pooled Batch internally.
//
// Structures treat the Idx/Delta columns as read-only, so one Batch
// can be fanned across several structures; the hash-column scratch
// inside the Batch is reused by each structure in turn.
type Batch = core.Batch

// GetBatch returns an empty batch from the shared arena. Pair with
// PutBatch when done to keep the steady-state ingest path
// allocation-free.
func GetBatch() *Batch { return core.GetBatch() }

// PutBatch returns a batch to the arena. The caller must not touch it
// afterwards.
func PutBatch(b *Batch) { core.PutBatch(b) }

// PlanBatch loads updates into a pooled batch — the explicit plan step
// for callers that want to reuse one columnar batch across several
// structures before returning it with PutBatch.
func PlanBatch(updates []Update) *Batch {
	b := core.GetBatch()
	b.LoadUpdates(updates)
	return b
}
