package bounded

// This file is the public face of the mergeability layer. Every sketch
// in the library is a linear (or monotone) function of its input
// stream, so two instances built from the SAME Config — same Seed, same
// parameters — combine into the sketch of the concatenated stream:
// counters add coordinate-wise, sampling schedules align, candidate
// trackers re-rank under the merged estimates. That is what makes the
// sharded ingest engine (package engine) possible: S single-writer
// instances ingest disjoint substreams in parallel and queries are
// answered from a merged snapshot. Paired with the wire format in
// sketch.go it also crosses process boundaries: marshal on one machine,
// unmarshal on another, Merge there.
//
// Contract shared by every Merge below (the Sketch interface contract):
//
//   - other must be the same concrete type as the receiver and both
//     structures must have been built with identical Config (and
//     options); mismatches return a descriptive error and leave the
//     receiver unchanged where practical.
//   - Merge may mutate other (e.g. thinning a CSSS table to align
//     sampling rates); other must not be used afterwards. Merge clones
//     when you need to keep the inputs.
//   - Neither Merge nor Clone is safe concurrently with updates to the
//     involved structures; the engine serializes them through its shard
//     workers.
//
// Clone returns a deep snapshot sharing only immutable state (hash
// functions), safe to hand to another goroutine while the original
// keeps ingesting. Clone returns the Sketch interface (the signature
// all eight structures share); assert back to the concrete type when
// you need the full query surface:
//
//	snap := hh.Clone().(*bounded.HeavyHitters)
//
// InnerProduct merges like every other structure: both of its stream
// sketches are linear, so f-sketches and g-sketches add coordinate-wise.

import (
	"fmt"
	"reflect"
)

// mergeTypeError formats the mismatched-operand diagnostic,
// distinguishing a nil operand (untyped or a typed-nil pointer boxed in
// the interface) from a genuinely different concrete type.
func mergeTypeError(want Kind, other Sketch) error {
	if other == nil {
		return fmt.Errorf("bounded: merge with nil %s", want)
	}
	if v := reflect.ValueOf(other); v.Kind() == reflect.Pointer && v.IsNil() {
		return fmt.Errorf("bounded: merge with nil %s", want)
	}
	return fmt.Errorf("bounded: merge of %T into %s (Merge requires the same concrete type)", other, want)
}

// Merge folds another HeavyHitters built from the same Config into this
// one; afterwards queries answer for the union of both input streams.
func (h *HeavyHitters) Merge(other Sketch) error {
	o, ok := other.(*HeavyHitters)
	if !ok || o == nil {
		return mergeTypeError(KindHeavyHitters, other)
	}
	return h.impl.Merge(o.impl)
}

// Clone returns a deep snapshot.
func (h *HeavyHitters) Clone() Sketch {
	return &HeavyHitters{cfg: h.cfg, strict: h.strict, impl: h.impl.Clone()}
}

// Merge folds another L1Estimator built from the same Config (and the
// same strict flag) into this one.
func (e *L1Estimator) Merge(other Sketch) error {
	o, ok := other.(*L1Estimator)
	if !ok || o == nil {
		return mergeTypeError(KindL1Estimator, other)
	}
	if (e.strict != nil) != (o.strict != nil) {
		return fmt.Errorf("bounded: merging strict and general L1Estimators")
	}
	if e.strict != nil {
		return e.strict.Merge(o.strict)
	}
	return e.general.Merge(o.general)
}

// Clone returns a deep snapshot.
func (e *L1Estimator) Clone() Sketch {
	c := &L1Estimator{cfg: e.cfg, delta: e.delta}
	if e.strict != nil {
		c.strict = e.strict.Clone()
	} else {
		c.general = e.general.Clone()
	}
	return c
}

// Merge folds another L0Estimator built from the same Config into this
// one.
func (e *L0Estimator) Merge(other Sketch) error {
	o, ok := other.(*L0Estimator)
	if !ok || o == nil {
		return mergeTypeError(KindL0Estimator, other)
	}
	return e.impl.Merge(o.impl)
}

// Clone returns a deep snapshot.
func (e *L0Estimator) Clone() Sketch {
	return &L0Estimator{cfg: e.cfg, impl: e.impl.Clone()}
}

// Merge folds another L1Sampler built from the same Config and copy
// count into this one.
func (s *L1Sampler) Merge(other Sketch) error {
	o, ok := other.(*L1Sampler)
	if !ok || o == nil {
		return mergeTypeError(KindL1Sampler, other)
	}
	return s.impl.Merge(o.impl)
}

// Clone returns a deep snapshot.
func (s *L1Sampler) Clone() Sketch {
	return &L1Sampler{cfg: s.cfg, copies: s.copies, impl: s.impl.Clone()}
}

// Merge folds another SupportSampler built from the same Config and k
// into this one.
func (s *SupportSampler) Merge(other Sketch) error {
	o, ok := other.(*SupportSampler)
	if !ok || o == nil {
		return mergeTypeError(KindSupportSampler, other)
	}
	return s.impl.Merge(o.impl)
}

// Clone returns a deep snapshot.
func (s *SupportSampler) Clone() Sketch {
	return &SupportSampler{cfg: s.cfg, k: s.k, impl: s.impl.Clone()}
}

// Merge folds another InnerProduct built from the same Config into this
// one: both of its stream sketches are linear, so the result estimates
// the inner product of the concatenated f streams and concatenated g
// streams.
func (ip *InnerProduct) Merge(other Sketch) error {
	o, ok := other.(*InnerProduct)
	if !ok || o == nil {
		return mergeTypeError(KindInnerProduct, other)
	}
	return ip.impl.Merge(o.impl)
}

// Clone returns a deep snapshot.
func (ip *InnerProduct) Clone() Sketch {
	return &InnerProduct{cfg: ip.cfg, impl: ip.impl.Clone()}
}

// Merge folds another L2HeavyHitters built from the same Config into
// this one.
func (h *L2HeavyHitters) Merge(other Sketch) error {
	o, ok := other.(*L2HeavyHitters)
	if !ok || o == nil {
		return mergeTypeError(KindL2HeavyHitters, other)
	}
	return h.impl.Merge(o.impl)
}

// Clone returns a deep snapshot.
func (h *L2HeavyHitters) Clone() Sketch {
	return &L2HeavyHitters{cfg: h.cfg, impl: h.impl.Clone()}
}

// Merge folds another SyncSketch built from the same Config and
// capacity into this one: the sketch is linear, so the result sketches
// the sum of both frequency vectors — shard-local sync sketches merge
// into the sketch of the full stream before an exchange.
func (s *SyncSketch) Merge(other Sketch) error {
	o, ok := other.(*SyncSketch)
	if !ok || o == nil || o.impl == nil {
		return mergeTypeError(KindSyncSketch, other)
	}
	if s.impl == nil {
		return fmt.Errorf("bounded: merge into zero-value SyncSketch (construct with NewSyncSketch or UnmarshalBinary first)")
	}
	return s.impl.Merge(o.impl)
}

// Clone returns a deep snapshot.
func (s *SyncSketch) Clone() Sketch {
	if s.impl == nil {
		return &SyncSketch{cfg: s.cfg, capacity: s.capacity}
	}
	return &SyncSketch{cfg: s.cfg, capacity: s.capacity, impl: s.impl.Clone()}
}
