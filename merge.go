package bounded

// This file is the public face of the mergeability layer. Every sketch
// in the library is a linear (or monotone) function of its input
// stream, so two instances built from the SAME Config — same Seed, same
// parameters — combine into the sketch of the concatenated stream:
// counters add coordinate-wise, sampling schedules align, candidate
// trackers re-rank under the merged estimates. That is what makes the
// sharded ingest engine (package engine) possible: S single-writer
// instances ingest disjoint substreams in parallel and queries are
// answered from a merged snapshot.
//
// Contract shared by every Merge below:
//
//   - Both structures must have been built with identical Config (and
//     any extra constructor arguments); mismatches return a descriptive
//     error and leave the receiver unchanged where practical.
//   - Merge may mutate other (e.g. thinning a CSSS table to align
//     sampling rates); other must not be used afterwards. Merge clones
//     when you need to keep the inputs.
//   - Neither Merge nor Clone is safe concurrently with updates to the
//     involved structures; the engine serializes them through its shard
//     workers.
//
// Clone returns a deep snapshot sharing only immutable state (hash
// functions), safe to hand to another goroutine while the original
// keeps ingesting. InnerProduct is the one structure without a Merge:
// it sketches TWO streams and its query is bilinear, so the engine's
// single-partition ingest does not apply to it.

import "fmt"

// Merge folds another HeavyHitters built from the same Config into this
// one; afterwards queries answer for the union of both input streams.
func (h *HeavyHitters) Merge(other *HeavyHitters) error {
	if other == nil {
		return fmt.Errorf("bounded: merge with nil HeavyHitters")
	}
	return h.impl.Merge(other.impl)
}

// Clone returns a deep snapshot.
func (h *HeavyHitters) Clone() *HeavyHitters {
	return &HeavyHitters{impl: h.impl.Clone()}
}

// Merge folds another L1Estimator built from the same Config (and the
// same strict flag) into this one.
func (e *L1Estimator) Merge(other *L1Estimator) error {
	if other == nil {
		return fmt.Errorf("bounded: merge with nil L1Estimator")
	}
	if (e.strict != nil) != (other.strict != nil) {
		return fmt.Errorf("bounded: merging strict and general L1Estimators")
	}
	if e.strict != nil {
		return e.strict.Merge(other.strict)
	}
	return e.general.Merge(other.general)
}

// Clone returns a deep snapshot.
func (e *L1Estimator) Clone() *L1Estimator {
	if e.strict != nil {
		return &L1Estimator{strict: e.strict.Clone()}
	}
	return &L1Estimator{general: e.general.Clone()}
}

// Merge folds another L0Estimator built from the same Config into this
// one.
func (e *L0Estimator) Merge(other *L0Estimator) error {
	if other == nil {
		return fmt.Errorf("bounded: merge with nil L0Estimator")
	}
	return e.impl.Merge(other.impl)
}

// Clone returns a deep snapshot.
func (e *L0Estimator) Clone() *L0Estimator {
	return &L0Estimator{impl: e.impl.Clone()}
}

// Merge folds another L1Sampler built from the same Config and copy
// count into this one.
func (s *L1Sampler) Merge(other *L1Sampler) error {
	if other == nil {
		return fmt.Errorf("bounded: merge with nil L1Sampler")
	}
	return s.impl.Merge(other.impl)
}

// Clone returns a deep snapshot.
func (s *L1Sampler) Clone() *L1Sampler {
	return &L1Sampler{impl: s.impl.Clone()}
}

// Merge folds another SupportSampler built from the same Config and k
// into this one.
func (s *SupportSampler) Merge(other *SupportSampler) error {
	if other == nil {
		return fmt.Errorf("bounded: merge with nil SupportSampler")
	}
	return s.impl.Merge(other.impl)
}

// Clone returns a deep snapshot.
func (s *SupportSampler) Clone() *SupportSampler {
	return &SupportSampler{impl: s.impl.Clone()}
}

// Merge folds another L2HeavyHitters built from the same Config into
// this one.
func (h *L2HeavyHitters) Merge(other *L2HeavyHitters) error {
	if other == nil {
		return fmt.Errorf("bounded: merge with nil L2HeavyHitters")
	}
	return h.impl.Merge(other.impl)
}

// Clone returns a deep snapshot.
func (h *L2HeavyHitters) Clone() *L2HeavyHitters {
	return &L2HeavyHitters{impl: h.impl.Clone()}
}

// Merge folds another SyncSketch built from the same Config and
// capacity into this one: the sketch is linear, so the result sketches
// the sum of both frequency vectors — shard-local sync sketches merge
// into the sketch of the full stream before an exchange.
func (s *SyncSketch) Merge(other *SyncSketch) error {
	if other == nil || other.impl == nil {
		return fmt.Errorf("bounded: merge with nil SyncSketch")
	}
	if s.impl == nil {
		return fmt.Errorf("bounded: merge into zero-value SyncSketch (construct with NewSyncSketch or UnmarshalBinary first)")
	}
	return s.impl.Merge(other.impl)
}

// Clone returns a deep snapshot.
func (s *SyncSketch) Clone() *SyncSketch {
	if s.impl == nil {
		return &SyncSketch{}
	}
	return &SyncSketch{impl: s.impl.Clone()}
}
