package bounded

import (
	"fmt"
	"math/rand"

	"repro/internal/cauchy"
	"repro/internal/core"
	"repro/internal/heavy"
	"repro/internal/inner"
	"repro/internal/l0"
	"repro/internal/l1"
	"repro/internal/sampler"
	"repro/internal/sparse"
	"repro/internal/stream"
	"repro/internal/support"
)

// Update is one stream element: add Delta to coordinate Index.
type Update = stream.Update

// Tracker measures a stream's exact model state: frequency vector,
// insertion/deletion decomposition, alpha-properties (Definitions 1-2),
// and strict-turnstile validity. It is the ground-truth oracle, not a
// small-space structure.
type Tracker = stream.Tracker

// NewTracker returns an exact tracker over a universe of size n.
func NewTracker(n uint64) *Tracker { return stream.NewTracker(n) }

// Config carries the parameters shared by all constructors.
type Config struct {
	// N is the universe size (indices are in [0, N)). Must be >= 2 and
	// at most 2^44.
	N uint64
	// Eps is the accuracy parameter (problem-specific meaning; see each
	// constructor).
	Eps float64
	// Alpha is the assumed L_p alpha-property bound of the input stream
	// (>= 1). It scales sampling budgets and retention windows.
	Alpha float64
	// Seed drives all randomness; equal seeds give identical structures.
	// Peers that intend to merge or exchange serialized sketches must
	// construct them from identical Configs.
	Seed int64
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// Validate reports whether the configuration is usable by every
// constructor in this package. Historically bad values were silently
// clamped (Alpha < 1) or misbehaved downstream (N outside the fast-range
// hash's 2^44 bound, nonpositive Eps); now every constructor rejects
// them up front with a descriptive error. Call Validate directly to
// check a configuration without constructing anything.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("bounded: Config.N must be >= 2 (universe needs at least two indices), got %d", c.N)
	}
	if c.N > 1<<44 {
		return fmt.Errorf("bounded: Config.N must be <= 2^44 (the fast-range bucket reduction and Cauchy key packing are uniform only up to 44-bit universes), got %d", c.N)
	}
	if c.Eps <= 0 {
		return fmt.Errorf("bounded: Config.Eps must be positive, got %v", c.Eps)
	}
	if c.Eps >= 1 {
		return fmt.Errorf("bounded: Config.Eps must be below 1 (accuracy parameters live in (0,1)), got %v", c.Eps)
	}
	if c.Alpha < 1 {
		return fmt.Errorf("bounded: Config.Alpha must be >= 1 (alpha = 1 is the insertion-only model; see Definition 1), got %v", c.Alpha)
	}
	return nil
}

// HeavyHitters answers L1 epsilon-heavy-hitters queries on alpha-property
// streams (Section 3 of the paper): it returns every i with
// |f_i| >= eps ||f||_1 and no i with |f_i| < (eps/2) ||f||_1, with high
// probability for strict turnstile streams (Theorem 4) and constant
// probability for general turnstile streams (Theorem 3).
type HeavyHitters struct {
	cfg    Config
	strict bool
	impl   *heavy.AlphaL1
}

// NewHeavyHitters builds the structure. By default it assumes the
// strict turnstile model (exact-counter L1 scale, valid when no prefix
// frequency goes negative); WithStrict(false) selects the general
// turnstile variant.
func NewHeavyHitters(cfg Config, opts ...Option) (*HeavyHitters, error) {
	o, err := buildOptions("NewHeavyHitters", cfg, opts, optStrict)
	if err != nil {
		return nil, err
	}
	mode := heavy.General
	if o.strict {
		mode = heavy.Strict
	}
	return &HeavyHitters{
		cfg:    cfg,
		strict: o.strict,
		impl: heavy.NewAlphaL1(cfg.rng(), heavy.AlphaL1Params{
			N: cfg.N, Eps: cfg.Eps, Mode: mode, Alpha: cfg.Alpha,
		}),
	}, nil
}

// Update feeds one stream update.
func (h *HeavyHitters) Update(i uint64, delta int64) { h.impl.Update(i, delta) }

// UpdateBatch feeds a batch of updates in one call — the preferred
// high-throughput ingest path: per-call overhead amortizes across the
// batch and candidate tracking refreshes once per distinct index.
func (h *HeavyHitters) UpdateBatch(batch []Update) { h.impl.UpdateBatch(batch) }

// UpdateColumns feeds a pre-planned columnar batch (plan → hash →
// apply): the CSSS rows hash the whole index column in straight-line
// batch evaluations and apply row-major in the exact (rate-1) regime.
func (h *HeavyHitters) UpdateColumns(b *Batch) { h.impl.UpdateColumns(b) }

// HeavyHitters returns the detected heavy coordinates, sorted.
func (h *HeavyHitters) HeavyHitters() []uint64 {
	queryGuard(h != nil && h.impl != nil, KindHeavyHitters, "HeavyHitters")
	return h.impl.HeavyHitters()
}

// Members returns the heavy-hitter set — the SetQuerier capability
// (an alias of HeavyHitters).
func (h *HeavyHitters) Members() []uint64 {
	queryGuard(h != nil && h.impl != nil, KindHeavyHitters, "Members")
	return h.impl.HeavyHitters()
}

// Estimate returns the point estimate of f_i.
func (h *HeavyHitters) Estimate(i uint64) float64 {
	queryGuard(h != nil && h.impl != nil, KindHeavyHitters, "Estimate")
	return h.impl.Query(i)
}

// EstimateBatch returns the point estimate of every index in one
// batched read — the query-side twin of UpdateBatch: the whole index
// set is hashed in ONE batch evaluation per sketch row (reusing a
// pooled columnar Batch as scratch) and the counter tables are swept
// row-major. Results are in input order and bit-identical to per-index
// Estimate calls.
func (h *HeavyHitters) EstimateBatch(idxs []uint64) []float64 {
	queryGuard(h != nil && h.impl != nil, KindHeavyHitters, "EstimateBatch")
	return estimateBatchImpl(h.impl, idxs)
}

// EstimateColumns fills out[j] with the point estimate of b.Idx[j],
// reusing b's hash-column scratch — the scratch-reusing form of
// EstimateBatch for callers that plan one Batch (GetBatch + LoadKeys)
// and query repeatedly. out must hold b.Len() entries.
func (h *HeavyHitters) EstimateColumns(b *Batch, out []float64) {
	queryGuard(h != nil && h.impl != nil, KindHeavyHitters, "EstimateColumns")
	estimateColumnsImpl(h.impl, b, out)
}

// SpaceBits reports the structure's space in the paper's cost model.
func (h *HeavyHitters) SpaceBits() int64 {
	queryGuard(h != nil && h.impl != nil, KindHeavyHitters, "SpaceBits")
	return h.impl.SpaceBits()
}

// L1Estimator estimates ||f||_1 of an alpha-property stream to (1 +-
// eps): Figure 4 / Theorem 6 in the strict turnstile model (tiny space:
// O(log(alpha/eps) + loglog n) bits), Theorem 8 in the general model.
type L1Estimator struct {
	cfg     Config
	delta   float64
	strict  *l1.AlphaEstimator
	general *cauchy.SampledSketch
}

// NewL1Estimator builds the estimator. By default it assumes the strict
// turnstile model with failure probability 0.1; tune the latter with
// WithFailureProb (strict variant only — combining WithFailureProb with
// WithStrict(false) is an error, as is any delta outside (0,1); the
// historical constructor silently replaced bad deltas with 0.1).
func NewL1Estimator(cfg Config, opts ...Option) (*L1Estimator, error) {
	o, err := buildOptions("NewL1Estimator", cfg, opts, optStrict, optFailure)
	if err != nil {
		return nil, err
	}
	if o.failureSet && !o.strict {
		return nil, fmt.Errorf("bounded: WithFailureProb applies only to the strict L1 estimator (the general variant's failure probability is fixed by its row count)")
	}
	rng := cfg.rng()
	if o.strict {
		base := l1.RecommendedBase(cfg.Alpha, cfg.Eps, o.failureProb, cfg.N)
		return &L1Estimator{cfg: cfg, delta: o.failureProb, strict: l1.New(rng, base)}, nil
	}
	r := int(4 / (cfg.Eps * cfg.Eps))
	if r < 16 {
		r = 16
	}
	base := int64(64 * cfg.Alpha * cfg.Alpha / cfg.Eps)
	if base < 16 {
		base = 16
	}
	return &L1Estimator{cfg: cfg, delta: o.failureProb, general: l1.NewGeneral(rng, r, 32, 6, base, 10)}, nil
}

// Update feeds one stream update.
func (e *L1Estimator) Update(i uint64, delta int64) {
	if e.strict != nil {
		e.strict.Update(i, delta)
	} else {
		e.general.Update(i, delta)
	}
}

// UpdateBatch feeds a batch of updates in one call.
func (e *L1Estimator) UpdateBatch(batch []Update) {
	if e.strict != nil {
		e.strict.UpdateBatch(batch)
	} else {
		e.general.UpdateBatch(batch)
	}
}

// UpdateColumns feeds a pre-planned columnar batch.
func (e *L1Estimator) UpdateColumns(b *Batch) {
	if e.strict != nil {
		e.strict.UpdateColumns(b)
	} else {
		e.general.UpdateColumns(b)
	}
}

// Estimate returns the (1 +- eps) estimate of ||f||_1 — the
// ScalarQuerier capability.
func (e *L1Estimator) Estimate() float64 {
	queryGuard(e != nil && (e.strict != nil || e.general != nil), KindL1Estimator, "Estimate")
	if e.strict != nil {
		return e.strict.Estimate()
	}
	return e.general.Estimate()
}

// SpaceBits reports the structure's space.
func (e *L1Estimator) SpaceBits() int64 {
	queryGuard(e != nil && (e.strict != nil || e.general != nil), KindL1Estimator, "SpaceBits")
	if e.strict != nil {
		return e.strict.SpaceBits()
	}
	return e.general.SpaceBits()
}

// L0Estimator estimates the support size ||f||_0 of an L0 alpha-property
// stream to (1 +- eps) (Figure 7 / Theorem 10): only O(log(alpha/eps))
// subsampling rows are kept live, replacing the turnstile
// eps^-2 log n with eps^-2 log(alpha/eps) + log n.
type L0Estimator struct {
	cfg  Config
	impl *l0.Estimator
}

// NewL0Estimator builds the windowed estimator.
func NewL0Estimator(cfg Config, opts ...Option) (*L0Estimator, error) {
	if _, err := buildOptions("NewL0Estimator", cfg, opts); err != nil {
		return nil, err
	}
	return &L0Estimator{
		cfg: cfg,
		impl: l0.NewEstimator(cfg.rng(), l0.Params{
			N: cfg.N, Eps: cfg.Eps,
			Windowed: true, Window: l0.RecommendedWindow(cfg.Alpha, cfg.Eps),
		}),
	}, nil
}

// Update feeds one stream update.
func (e *L0Estimator) Update(i uint64, delta int64) { e.impl.Update(i, delta) }

// UpdateBatch feeds a batch of updates in one call.
func (e *L0Estimator) UpdateBatch(batch []Update) { e.impl.UpdateBatch(batch) }

// UpdateColumns feeds a pre-planned columnar batch (the subsampling
// level hash is batch-evaluated into one contiguous column).
func (e *L0Estimator) UpdateColumns(b *Batch) { e.impl.UpdateColumns(b) }

// Estimate returns the (1 +- eps) estimate of ||f||_0 — the
// ScalarQuerier capability.
func (e *L0Estimator) Estimate() float64 {
	queryGuard(e != nil && e.impl != nil, KindL0Estimator, "Estimate")
	return e.impl.Estimate()
}

// LiveRows reports how many subsampling rows are currently maintained —
// O(log(alpha/eps)) for this windowed structure versus log(n) for the
// unbounded-deletion baseline.
func (e *L0Estimator) LiveRows() int {
	queryGuard(e != nil && e.impl != nil, KindL0Estimator, "LiveRows")
	return e.impl.LiveRows()
}

// SpaceBits reports the structure's space.
func (e *L0Estimator) SpaceBits() int64 {
	queryGuard(e != nil && e.impl != nil, KindL0Estimator, "SpaceBits")
	return e.impl.SpaceBits()
}

// Sample is a successful L1 sample: an index drawn with probability
// (1 +- eps)|f_i|/||f||_1 and an O(eps)-relative-error estimate of f_i.
type Sample = sampler.Result

// L1Sampler is the Figure 3 / Theorem 5 perfect L1 sampler for strict
// turnstile strong alpha-property streams.
type L1Sampler struct {
	cfg    Config
	copies int
	impl   *sampler.Sampler
}

// NewL1Sampler builds the sampler. WithCopies sets the number of
// parallel instances (each succeeds with probability Theta(eps)); the
// default 2/eps copies give constant failure probability.
func NewL1Sampler(cfg Config, opts ...Option) (*L1Sampler, error) {
	o, err := buildOptions("NewL1Sampler", cfg, opts, optCopies)
	if err != nil {
		return nil, err
	}
	copies := o.copies
	if copies <= 0 {
		copies = int(2 / cfg.Eps)
		if copies < 4 {
			copies = 4
		}
	}
	return &L1Sampler{
		cfg:    cfg,
		copies: copies,
		impl: sampler.New(cfg.rng(), sampler.Params{
			N: cfg.N, Eps: cfg.Eps, Alpha: cfg.Alpha,
		}, copies),
	}, nil
}

// Update feeds one stream update.
func (s *L1Sampler) Update(i uint64, delta int64) { s.impl.Update(i, delta) }

// UpdateBatch feeds a batch of updates in one call; the distinct-index
// candidate refresh is computed once and shared across the sampler's
// parallel copies.
func (s *L1Sampler) UpdateBatch(batch []Update) { s.impl.UpdateBatch(batch) }

// UpdateColumns feeds a pre-planned columnar batch.
func (s *L1Sampler) UpdateColumns(b *Batch) { s.impl.UpdateColumns(b) }

// Sample draws one sample — the SampleQuerier capability; ok is false
// when every instance FAILed (the sampler never fabricates an index).
func (s *L1Sampler) Sample() (Sample, bool) {
	queryGuard(s != nil && s.impl != nil, KindL1Sampler, "Sample")
	return s.impl.Sample()
}

// SpaceBits reports the structure's space.
func (s *L1Sampler) SpaceBits() int64 {
	queryGuard(s != nil && s.impl != nil, KindL1Sampler, "SpaceBits")
	return s.impl.SpaceBits()
}

// SupportSampler returns at least min(k, ||f||_0) support coordinates of
// a strict turnstile L0 alpha-property stream (Figure 8 / Theorem 11).
type SupportSampler struct {
	cfg  Config
	k    int
	impl *support.Sampler
}

// NewSupportSampler builds the sampler; WithK sets the number of
// requested coordinates (default 32).
func NewSupportSampler(cfg Config, opts ...Option) (*SupportSampler, error) {
	o, err := buildOptions("NewSupportSampler", cfg, opts, optK)
	if err != nil {
		return nil, err
	}
	return &SupportSampler{
		cfg: cfg,
		k:   o.k,
		impl: support.NewSampler(cfg.rng(), support.Params{
			N: cfg.N, K: o.k,
			Windowed: true, Window: support.RecommendedWindow(cfg.Alpha),
		}),
	}, nil
}

// Update feeds one stream update.
func (s *SupportSampler) Update(i uint64, delta int64) { s.impl.Update(i, delta) }

// UpdateBatch feeds a batch of updates in one call.
func (s *SupportSampler) UpdateBatch(batch []Update) { s.impl.UpdateBatch(batch) }

// UpdateColumns feeds a pre-planned columnar batch (the level hash is
// batch-evaluated into one contiguous column).
func (s *SupportSampler) UpdateColumns(b *Batch) { s.impl.UpdateColumns(b) }

// Recover returns distinct support coordinates, sorted.
func (s *SupportSampler) Recover() []uint64 {
	queryGuard(s != nil && s.impl != nil, KindSupportSampler, "Recover")
	return s.impl.Recover()
}

// Members returns the recovered support coordinates — the SetQuerier
// capability (an alias of Recover).
func (s *SupportSampler) Members() []uint64 {
	queryGuard(s != nil && s.impl != nil, KindSupportSampler, "Members")
	return s.impl.Recover()
}

// Contains reports whether i belongs to the sampler's recovered
// support — the Prober capability. Only the level sketches that
// actually sample i are decoded (sparsest first, early exit), so a
// probe is cheaper than materializing Recover's whole union; the
// verdict equals membership in Recover().
func (s *SupportSampler) Contains(i uint64) bool {
	queryGuard(s != nil && s.impl != nil, KindSupportSampler, "Contains")
	return s.impl.Contains(i)
}

// ProbeBatch returns Contains for every index, in input order — the
// BatchProber capability. One batch hash evaluation assigns every
// index its sampling level and each live level sketch decodes at most
// once per batch (the dominant probe cost), instead of once per index;
// verdicts are identical to per-index Contains calls.
func (s *SupportSampler) ProbeBatch(idxs []uint64) []bool {
	queryGuard(s != nil && s.impl != nil, KindSupportSampler, "ProbeBatch")
	out := make([]bool, len(idxs))
	if len(idxs) == 0 {
		return out
	}
	b := core.GetBatch()
	s.impl.ProbeBatch(b, idxs, out)
	core.PutBatch(b)
	return out
}

// ProbeColumns fills out[j] with Contains(b.Idx[j]), reusing b's
// hash-column scratch — the allocation-conscious form of ProbeBatch
// for callers that plan one Batch and probe repeatedly. out must hold
// b.Len() entries.
func (s *SupportSampler) ProbeColumns(b *Batch, out []bool) {
	queryGuard(s != nil && s.impl != nil, KindSupportSampler, "ProbeColumns")
	s.impl.ProbeBatch(b, b.Idx, out)
}

// SpaceBits reports the structure's space.
func (s *SupportSampler) SpaceBits() int64 {
	queryGuard(s != nil && s.impl != nil, KindSupportSampler, "SpaceBits")
	return s.impl.SpaceBits()
}

// InnerProduct estimates <f, g> between two alpha-property streams to
// additive eps ||f||_1 ||g||_1 (Theorem 2).
type InnerProduct struct {
	cfg  Config
	impl *inner.Estimator
}

// NewInnerProduct builds the estimator. The sample budget grows with
// alpha^2/eps as in the paper's s = poly(alpha/eps).
func NewInnerProduct(cfg Config, opts ...Option) (*InnerProduct, error) {
	if _, err := buildOptions("NewInnerProduct", cfg, opts); err != nil {
		return nil, err
	}
	base := int64(16 * cfg.Alpha * cfg.Alpha / cfg.Eps)
	if base < 16 {
		base = 16
	}
	return &InnerProduct{
		cfg: cfg,
		impl: inner.New(cfg.rng(), inner.Params{
			N: cfg.N, Eps: cfg.Eps, Base: base, Rows: 5,
		}),
	}, nil
}

// Update feeds an update to the FIRST stream f — the Sketch-interface
// ingest path. Use UpdateG for the second stream g.
func (ip *InnerProduct) Update(i uint64, delta int64) { ip.impl.UpdateF(i, delta) }

// UpdateBatch feeds a batch of updates to the first stream f.
func (ip *InnerProduct) UpdateBatch(batch []Update) { ip.impl.UpdateBatchF(batch) }

// UpdateF feeds an update to the first stream (alias of Update).
func (ip *InnerProduct) UpdateF(i uint64, delta int64) { ip.impl.UpdateF(i, delta) }

// UpdateG feeds an update to the second stream.
func (ip *InnerProduct) UpdateG(i uint64, delta int64) { ip.impl.UpdateG(i, delta) }

// UpdateBatchF feeds a batch of updates to the first stream (alias of
// UpdateBatch).
func (ip *InnerProduct) UpdateBatchF(batch []Update) { ip.impl.UpdateBatchF(batch) }

// UpdateBatchG feeds a batch of updates to the second stream.
func (ip *InnerProduct) UpdateBatchG(batch []Update) { ip.impl.UpdateBatchG(batch) }

// UpdateColumns feeds a pre-planned columnar batch to the first
// stream; UpdateColumnsG feeds the second.
func (ip *InnerProduct) UpdateColumns(b *Batch) { ip.impl.UpdateColumnsF(b) }

// UpdateColumnsG feeds a pre-planned columnar batch to the second
// stream.
func (ip *InnerProduct) UpdateColumnsG(b *Batch) { ip.impl.UpdateColumnsG(b) }

// Estimate returns the inner-product estimate — the ScalarQuerier
// capability.
func (ip *InnerProduct) Estimate() float64 {
	queryGuard(ip != nil && ip.impl != nil, KindInnerProduct, "Estimate")
	return ip.impl.Estimate()
}

// SpaceBits reports the structure's space.
func (ip *InnerProduct) SpaceBits() int64 {
	queryGuard(ip != nil && ip.impl != nil, KindInnerProduct, "SpaceBits")
	return ip.impl.SpaceBits()
}

// ErrDense is returned by SyncSketch.Decode when the sketched difference
// exceeds the sketch's capacity (Lemma 22's DENSE answer).
var ErrDense = sparse.ErrDense

// SyncSketch is the remote-differential-compression primitive from the
// paper's introduction, packaged end to end: both parties build a
// sketch with the same Seed, one ships its serialized sketch to the
// other, the receiver subtracts it, and Decode returns exactly the
// coordinates on which the two frequency vectors differ — provided
// there are at most `capacity` of them (otherwise ErrDense).
type SyncSketch struct {
	cfg      Config
	capacity int
	impl     *sparse.Recovery
}

// NewSyncSketch builds a sketch able to recover up to WithCapacity
// (default 256) differing coordinates. Peers that intend to exchange
// sketches must use identical cfg (Seed and N included) and capacity.
func NewSyncSketch(cfg Config, opts ...Option) (*SyncSketch, error) {
	o, err := buildOptions("NewSyncSketch", cfg, opts, optCapacity)
	if err != nil {
		return nil, err
	}
	return &SyncSketch{
		cfg:      cfg,
		capacity: o.capacity,
		impl:     sparse.NewRecovery(cfg.rng(), o.capacity, cfg.N),
	}, nil
}

// Update feeds one stream update.
func (s *SyncSketch) Update(i uint64, delta int64) { s.impl.Update(i, delta) }

// UpdateBatch feeds a batch of updates in one call.
func (s *SyncSketch) UpdateBatch(batch []Update) { s.impl.UpdateBatch(batch) }

// UpdateColumns feeds a pre-planned columnar batch: the fingerprint
// column is hashed once and each IBLT subtable applies it in one
// cache-friendly sweep.
func (s *SyncSketch) UpdateColumns(b *Batch) { s.impl.UpdateColumns(b) }

// SubRemote subtracts a peer's serialized sketch (built with the same
// seed) from this one, leaving the sketch of the difference vector. It
// accepts both the enveloped MarshalBinary format and the historical
// raw frame. On a zero-value receiver that has not restored any state
// yet it returns a descriptive error instead of panicking: an empty
// receiver has no hash wiring to subtract against — call
// UnmarshalBinary (or NewSyncSketch plus updates) first.
func (s *SyncSketch) SubRemote(data []byte) error {
	if s.impl == nil {
		return fmt.Errorf("bounded: SubRemote on zero-value SyncSketch; restore it with UnmarshalBinary (or build it with NewSyncSketch) first")
	}
	payload, err := syncPayload(data)
	if err != nil {
		return err
	}
	return s.impl.SubRemote(payload)
}

// Decode recovers the sketched (difference) vector exactly, or returns
// ErrDense when it exceeds capacity. A zero-value receiver decodes to
// an error rather than panicking.
func (s *SyncSketch) Decode() (map[uint64]int64, error) {
	if s.impl == nil {
		return nil, fmt.Errorf("bounded: Decode on zero-value SyncSketch; restore it with UnmarshalBinary (or build it with NewSyncSketch) first")
	}
	return s.impl.Decode()
}

// SpaceBits reports the structure's space.
func (s *SyncSketch) SpaceBits() int64 {
	queryGuard(s != nil && s.impl != nil, KindSyncSketch, "SpaceBits")
	return s.impl.SpaceBits()
}

// L2HeavyHitters answers L2 heavy hitters queries on alpha-property
// streams (Appendix A): every i with |f_i| >= eps ||f||_2 is returned
// and no i with |f_i| < (eps/2) ||f||_2, using O((alpha/eps)^2) space.
type L2HeavyHitters struct {
	cfg  Config
	impl *heavy.AlphaL2
}

// NewL2HeavyHitters builds the Appendix A structure.
func NewL2HeavyHitters(cfg Config, opts ...Option) (*L2HeavyHitters, error) {
	if _, err := buildOptions("NewL2HeavyHitters", cfg, opts); err != nil {
		return nil, err
	}
	return &L2HeavyHitters{
		cfg:  cfg,
		impl: heavy.NewAlphaL2(cfg.rng(), cfg.N, cfg.Eps, cfg.Alpha),
	}, nil
}

// Update feeds one stream update.
func (h *L2HeavyHitters) Update(i uint64, delta int64) { h.impl.Update(i, delta) }

// UpdateBatch feeds a batch of updates in one call.
func (h *L2HeavyHitters) UpdateBatch(batch []Update) { h.impl.UpdateBatch(batch) }

// UpdateColumns feeds a pre-planned columnar batch to both the
// insertion-pass and verifier Count-Sketches.
func (h *L2HeavyHitters) UpdateColumns(b *Batch) { h.impl.UpdateColumns(b) }

// HeavyHitters returns the detected heavy coordinates, sorted.
func (h *L2HeavyHitters) HeavyHitters() []uint64 {
	queryGuard(h != nil && h.impl != nil, KindL2HeavyHitters, "HeavyHitters")
	return h.impl.HeavyHitters()
}

// Members returns the heavy-hitter set — the SetQuerier capability
// (an alias of HeavyHitters).
func (h *L2HeavyHitters) Members() []uint64 {
	queryGuard(h != nil && h.impl != nil, KindL2HeavyHitters, "Members")
	return h.impl.HeavyHitters()
}

// Estimate returns the verification Count-Sketch's point estimate of
// f_i — the value the L2 decision rule thresholds.
func (h *L2HeavyHitters) Estimate(i uint64) float64 {
	queryGuard(h != nil && h.impl != nil, KindL2HeavyHitters, "Estimate")
	return h.impl.Query(i)
}

// EstimateBatch returns the point estimate of every index in one
// batched read (see HeavyHitters.EstimateBatch).
func (h *L2HeavyHitters) EstimateBatch(idxs []uint64) []float64 {
	queryGuard(h != nil && h.impl != nil, KindL2HeavyHitters, "EstimateBatch")
	return estimateBatchImpl(h.impl, idxs)
}

// EstimateColumns fills out[j] with the point estimate of b.Idx[j],
// reusing b's hash-column scratch (see HeavyHitters.EstimateColumns).
func (h *L2HeavyHitters) EstimateColumns(b *Batch, out []float64) {
	queryGuard(h != nil && h.impl != nil, KindL2HeavyHitters, "EstimateColumns")
	estimateColumnsImpl(h.impl, b, out)
}

// SpaceBits reports the structure's space.
func (h *L2HeavyHitters) SpaceBits() int64 {
	queryGuard(h != nil && h.impl != nil, KindL2HeavyHitters, "SpaceBits")
	return h.impl.SpaceBits()
}
