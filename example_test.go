package bounded_test

import (
	"fmt"
	"sort"

	bounded "repro"
)

// ExampleNewHeavyHitters sketches a strict-turnstile stream with one hot
// key and churny background traffic, then asks for the 10%-heavy items.
func ExampleNewHeavyHitters() {
	cfg := bounded.Config{N: 1 << 16, Eps: 0.1, Alpha: 4, Seed: 1}
	hh, err := bounded.NewHeavyHitters(cfg) // strict turnstile is the default
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3000; i++ {
		hh.Update(uint64(i%100), 2)  // background inserts
		hh.Update(uint64(i%100), -1) // bounded churn: half deleted
		hh.Update(4242, 1)           // the hot key
	}
	fmt.Println(hh.HeavyHitters())
	// Output: [4242]
}

// ExampleNewL1Estimator estimates the L1 norm of a bounded-deletion
// stream exactly in the unsampled regime.
func ExampleNewL1Estimator() {
	cfg := bounded.Config{N: 1 << 10, Eps: 0.1, Alpha: 2, Seed: 1}
	e, err := bounded.NewL1Estimator(cfg, bounded.WithFailureProb(0.05))
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 100; i++ {
		e.Update(i, 10)
		e.Update(i, -4)
	}
	fmt.Printf("%.0f\n", e.Estimate())
	// Output: 600
}

// ExampleNewL0Estimator counts live sensors exactly while their number
// is small (the exact small-L0 path of Lemma 19).
func ExampleNewL0Estimator() {
	cfg := bounded.Config{N: 1 << 20, Eps: 0.2, Alpha: 4, Seed: 1}
	e, err := bounded.NewL0Estimator(cfg)
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 80; i++ {
		e.Update(i*1000, 1)
	}
	for i := uint64(0); i < 30; i++ {
		e.Update(i*1000, -1) // these sensors go dark
	}
	fmt.Printf("%.0f\n", e.Estimate())
	// Output: 50
}

// ExampleNewSyncSketch plays the remote-differential-compression
// exchange: two peers sketch their file's chunk hashes with a shared
// seed, one ships its sketch, and the receiver decodes exactly the
// differing chunks.
func ExampleNewSyncSketch() {
	cfg := bounded.Config{N: 1 << 20, Seed: 99, Eps: 0.1, Alpha: 2}
	client, _ := bounded.NewSyncSketch(cfg, bounded.WithCapacity(8))
	server, _ := bounded.NewSyncSketch(cfg, bounded.WithCapacity(8))

	for _, chunk := range []uint64{10, 20, 30, 40} { // client's file
		client.Update(chunk, 1)
	}
	for _, chunk := range []uint64{10, 20, 31, 40} { // server's file
		server.Update(chunk, 1)
	}

	wire, _ := client.MarshalBinary()
	_ = server.SubRemote(wire)
	diff, _ := server.Decode()

	var ids []uint64
	for id := range diff {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		fmt.Println(id, diff[id])
	}
	// Output:
	// 30 -1
	// 31 1
}

// ExampleNewTracker measures a stream's alpha-properties exactly.
func ExampleNewTracker() {
	tr := bounded.NewTracker(16)
	tr.Update(bounded.Update{Index: 1, Delta: 6})
	tr.Update(bounded.Update{Index: 2, Delta: 2})
	tr.Update(bounded.Update{Index: 1, Delta: -2})
	fmt.Printf("alpha=%.2f strict=%v L1=%d\n", tr.AlphaL1(), tr.Strict, tr.F.L1())
	// Output: alpha=1.67 strict=true L1=6
}
