package bounded

import (
	"testing"
)

// FuzzUnmarshal drives arbitrary bytes through every deserialization
// entry point. The contract under fuzzing: corrupt, truncated,
// bit-flipped or wrong-version payloads return errors — they never
// panic, never allocate beyond the input's own size (the wire reader
// refuses length prefixes exceeding the remaining bytes), and never
// install half-initialized state (a failed UnmarshalBinary leaves the
// receiver untouched, which the post-failure Update exercises).
func FuzzUnmarshal(f *testing.F) {
	// Seed the corpus with one valid payload per structure, plus
	// adversarial fragments.
	cfg := Config{N: 1 << 10, Eps: 0.1, Alpha: 2, Seed: 9}
	seed := func(s Sketch, err error) {
		if err != nil {
			f.Fatal(err)
		}
		s.Update(3, 2)
		s.Update(7, -1)
		data, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// A truncated and a version-flipped variant per structure.
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[2] ^= 0xFF
		f.Add(flipped)
	}
	seed(NewHeavyHitters(cfg))
	seed(NewHeavyHitters(cfg, WithStrict(false)))
	seed(NewL1Estimator(cfg))
	seed(NewL1Estimator(cfg, WithStrict(false)))
	seed(NewL0Estimator(cfg))
	seed(NewL1Sampler(Config{N: 1 << 10, Eps: 0.25, Alpha: 2, Seed: 9}, WithCopies(2)))
	seed(NewSupportSampler(cfg, WithK(4)))
	seed(NewInnerProduct(cfg))
	seed(NewL2HeavyHitters(cfg))
	seed(NewSyncSketch(cfg, WithCapacity(16)))
	f.Add([]byte{})
	f.Add([]byte{'B', 'D'})
	f.Add([]byte{'B', 'D', 1, 1, 0, 0, 0})
	f.Add([]byte{'S', 'R', 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The generic dispatcher.
		if s, err := UnmarshalSketch(data); err == nil {
			// A successfully restored sketch must be usable.
			s.Update(1, 1)
			if _, err := s.MarshalBinary(); err != nil {
				t.Errorf("restored sketch failed to re-marshal: %v", err)
			}
		}
		// Every typed receiver, including the legacy sync path. A failed
		// restore must leave the zero value intact (the subsequent
		// UnmarshalBinary of a valid payload checks nothing leaked).
		var hh HeavyHitters
		_ = hh.UnmarshalBinary(data)
		var l1e L1Estimator
		_ = l1e.UnmarshalBinary(data)
		var l0e L0Estimator
		_ = l0e.UnmarshalBinary(data)
		var smp L1Sampler
		_ = smp.UnmarshalBinary(data)
		var sup SupportSampler
		_ = sup.UnmarshalBinary(data)
		var ip InnerProduct
		_ = ip.UnmarshalBinary(data)
		var l2 L2HeavyHitters
		_ = l2.UnmarshalBinary(data)
		var syn SyncSketch
		if err := syn.UnmarshalBinary(data); err == nil {
			_ = syn.SubRemote(data)
			_, _ = syn.Decode()
		}
		if _, err := SketchKind(data); err == nil && len(data) < 4 {
			t.Error("SketchKind accepted a short payload")
		}
	})
}
