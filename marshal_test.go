package bounded

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/stream"
)

// fig1Stream is the shared marshal-test workload: the Fig1
// bounded-deletion stream the benchmarks use, split into two halves so
// tests can model "two sites sketch disjoint substreams, one ships its
// sketch to the other".
func fig1Stream(t *testing.T) (whole, first, second []stream.Update) {
	t.Helper()
	s := gen.BoundedDeletion(gen.Config{N: 1 << 12, Items: 30000, Alpha: 4, Zipf: 1.3, Seed: 77})
	half := len(s.Updates) / 2
	return s.Updates, s.Updates[:half], s.Updates[half:]
}

// marshalCase describes one structure's differential ship-merge check.
type marshalCase struct {
	name string
	kind Kind
	make func(t *testing.T) Sketch
	// answer extracts a comparable query answer.
	answer func(s Sketch) any
}

func marshalCases() []marshalCase {
	cfg := Config{N: 1 << 12, Eps: 0.05, Alpha: 4, Seed: 5}
	must := func(s Sketch, err error) func(*testing.T) Sketch {
		return func(t *testing.T) Sketch {
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	return []marshalCase{
		{
			name:   "HeavyHitters",
			kind:   KindHeavyHitters,
			make:   func(t *testing.T) Sketch { return must(NewHeavyHitters(cfg))(t) },
			answer: func(s Sketch) any { return s.(*HeavyHitters).HeavyHitters() },
		},
		{
			name:   "HeavyHittersGeneral",
			kind:   KindHeavyHitters,
			make:   func(t *testing.T) Sketch { return must(NewHeavyHitters(cfg, WithStrict(false)))(t) },
			answer: func(s Sketch) any { return s.(*HeavyHitters).HeavyHitters() },
		},
		{
			name:   "L1Estimator",
			kind:   KindL1Estimator,
			make:   func(t *testing.T) Sketch { return must(NewL1Estimator(cfg))(t) },
			answer: func(s Sketch) any { return s.(*L1Estimator).Estimate() },
		},
		{
			name:   "L1EstimatorGeneral",
			kind:   KindL1Estimator,
			make:   func(t *testing.T) Sketch { return must(NewL1Estimator(cfg, WithStrict(false)))(t) },
			answer: func(s Sketch) any { return s.(*L1Estimator).Estimate() },
		},
		{
			name:   "L0Estimator",
			kind:   KindL0Estimator,
			make:   func(t *testing.T) Sketch { return must(NewL0Estimator(cfg))(t) },
			answer: func(s Sketch) any { return s.(*L0Estimator).Estimate() },
		},
		{
			name: "L1Sampler",
			kind: KindL1Sampler,
			make: func(t *testing.T) Sketch {
				return must(NewL1Sampler(Config{N: 1 << 12, Eps: 0.25, Alpha: 4, Seed: 5}, WithCopies(4)))(t)
			},
			answer: func(s Sketch) any {
				r, ok := s.(*L1Sampler).Sample()
				return fmt.Sprintf("%v/%v", r, ok)
			},
		},
		{
			name:   "SupportSampler",
			kind:   KindSupportSampler,
			make:   func(t *testing.T) Sketch { return must(NewSupportSampler(cfg, WithK(16)))(t) },
			answer: func(s Sketch) any { return s.(*SupportSampler).Recover() },
		},
		{
			name:   "InnerProduct",
			kind:   KindInnerProduct,
			make:   func(t *testing.T) Sketch { return must(NewInnerProduct(cfg))(t) },
			answer: func(s Sketch) any { return s.(*InnerProduct).Estimate() },
		},
		{
			name: "L2HeavyHitters",
			kind: KindL2HeavyHitters,
			make: func(t *testing.T) Sketch {
				return must(NewL2HeavyHitters(Config{N: 1 << 12, Eps: 0.1, Alpha: 4, Seed: 5}))(t)
			},
			answer: func(s Sketch) any { return s.(*L2HeavyHitters).HeavyHitters() },
		},
		{
			name:   "SyncSketch",
			kind:   KindSyncSketch,
			make:   func(t *testing.T) Sketch { return must(NewSyncSketch(cfg, WithCapacity(64)))(t) },
			answer: func(s Sketch) any { return s.(*SyncSketch).SpaceBits() },
		},
	}
}

// TestShipMergeMatchesCloneMerge is the acceptance differential: for
// every structure, marshal → (ship) → unmarshal → Merge into a peer
// produces answers identical to an in-process Clone + Merge, on the
// Fig1 workload. The wire format therefore loses nothing a merge
// consumes: tables, trackers, sampling clocks, hash wirings.
func TestShipMergeMatchesCloneMerge(t *testing.T) {
	_, first, second := fig1Stream(t)
	for _, tc := range marshalCases() {
		t.Run(tc.name, func(t *testing.T) {
			// Site A sketches the first half; site B the second half.
			siteA := tc.make(t)
			siteA.UpdateBatch(first)
			siteB := tc.make(t)
			siteB.UpdateBatch(second)

			// In-process path: a clone of B merges into a clone of A.
			inProc := siteA.Clone()
			if err := inProc.Merge(siteB.Clone()); err != nil {
				t.Fatalf("in-process merge: %v", err)
			}

			// Wire path: B's sketch ships as bytes; A restores and merges.
			data, err := siteB.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			shipped, err := UnmarshalSketch(data)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if k, _ := SketchKind(data); k != tc.kind {
				t.Fatalf("SketchKind = %v, want %v", k, tc.kind)
			}
			overWire := siteA.Clone()
			if err := overWire.Merge(shipped); err != nil {
				t.Fatalf("wire merge: %v", err)
			}

			got, want := tc.answer(overWire), tc.answer(inProc)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("wire-merged answer %v differs from clone-merged answer %v", got, want)
			}
		})
	}
}

// TestMarshalRoundTripAnswers: Unmarshal(Marshal(s)) answers exactly
// like s on the full Fig1 workload.
func TestMarshalRoundTripAnswers(t *testing.T) {
	whole, _, _ := fig1Stream(t)
	for _, tc := range marshalCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.make(t)
			s.UpdateBatch(whole)
			data, err := s.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := UnmarshalSketch(data)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := tc.answer(restored), tc.answer(s); !reflect.DeepEqual(got, want) {
				t.Fatalf("restored answer %v differs from original %v", got, want)
			}
			if restored.SpaceBits() != s.SpaceBits() {
				t.Errorf("SpaceBits differs: %d vs %d", restored.SpaceBits(), s.SpaceBits())
			}
		})
	}
}

// TestMergeRejectsWrongKind: the Sketch-interface Merge refuses a
// different concrete type with a descriptive error.
func TestMergeRejectsWrongKind(t *testing.T) {
	cfg := Config{N: 1 << 10, Eps: 0.1, Alpha: 2, Seed: 1}
	hh, err := NewHeavyHitters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l0e, err := NewL0Estimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := hh.Merge(l0e); err == nil {
		t.Fatal("HeavyHitters.Merge accepted an L0Estimator")
	}
	if err := hh.Merge(nil); err == nil {
		t.Fatal("HeavyHitters.Merge accepted nil")
	}
	// A typed-nil of the RIGHT type reads as a nil diagnostic, not a
	// misleading wrong-type one.
	var typedNil *HeavyHitters
	err = hh.Merge(typedNil)
	if err == nil {
		t.Fatal("HeavyHitters.Merge accepted a typed nil")
	}
	if !strings.Contains(err.Error(), "nil") || strings.Contains(err.Error(), "concrete type") {
		t.Fatalf("typed-nil merge diagnostic misleads: %v", err)
	}
}

// TestUnmarshalWrongKindRejected: a structure refuses another
// structure's payload by kind byte, before touching any state.
func TestUnmarshalWrongKindRejected(t *testing.T) {
	cfg := Config{N: 1 << 10, Eps: 0.1, Alpha: 2, Seed: 1}
	hh, err := NewHeavyHitters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := hh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var l0e L0Estimator
	if err := l0e.UnmarshalBinary(data); err == nil {
		t.Fatal("L0Estimator accepted a HeavyHitters payload")
	}
}

// TestOptionErrors covers the constructor option contract: bad values
// and non-applicable options return descriptive errors (the historical
// API silently clamped the L1 estimator's delta).
func TestOptionErrors(t *testing.T) {
	cfg := Config{N: 1 << 10, Eps: 0.1, Alpha: 2, Seed: 1}
	if _, err := NewL1Estimator(cfg, WithFailureProb(1.5)); err == nil {
		t.Error("out-of-range WithFailureProb accepted")
	}
	if _, err := NewL1Estimator(cfg, WithFailureProb(0)); err == nil {
		t.Error("zero WithFailureProb accepted")
	}
	if _, err := NewL1Estimator(cfg, WithStrict(false), WithFailureProb(0.1)); err == nil {
		t.Error("WithFailureProb on the general estimator accepted")
	}
	if _, err := NewHeavyHitters(cfg, WithCopies(4)); err == nil {
		t.Error("WithCopies on NewHeavyHitters accepted")
	}
	if _, err := NewL0Estimator(cfg, WithK(8)); err == nil {
		t.Error("WithK on NewL0Estimator accepted")
	}
	if _, err := NewL1Sampler(cfg, WithCopies(0)); err == nil {
		t.Error("WithCopies(0) accepted")
	}
	if _, err := NewSyncSketch(cfg, WithCapacity(-1)); err == nil {
		t.Error("negative WithCapacity accepted")
	}
	if _, err := NewHeavyHitters(Config{}); err == nil {
		t.Error("invalid Config accepted")
	}
	// Valid combinations still construct.
	if _, err := NewL1Estimator(cfg, WithStrict(true), WithFailureProb(0.05)); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// TestZeroValueMarshalErrors: MarshalBinary on a zero-value receiver
// returns the descriptive zero-value error for every structure — the
// typed-nil impl pointer must not slip past the guard and panic.
func TestZeroValueMarshalErrors(t *testing.T) {
	zeroes := []Sketch{
		&HeavyHitters{},
		&L1Estimator{},
		&L0Estimator{},
		&L1Sampler{},
		&SupportSampler{},
		&InnerProduct{},
		&L2HeavyHitters{},
		&SyncSketch{},
	}
	for _, z := range zeroes {
		if _, err := z.MarshalBinary(); err == nil {
			t.Errorf("%T: zero-value MarshalBinary succeeded, want error", z)
		}
	}
}

// TestUnmarshalSketchRejectsGarbage: corrupt, truncated, and
// wrong-version payloads error without panicking.
func TestUnmarshalSketchRejectsGarbage(t *testing.T) {
	cfg := Config{N: 1 << 10, Eps: 0.1, Alpha: 2, Seed: 1}
	hh, err := NewHeavyHitters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hh.Update(1, 5)
	data, err := hh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{
		nil,
		{},
		{'B'},
		{'X', 'Y', 1, 1},
		data[:len(data)/2],
		data[:len(data)-1],
	} {
		if _, err := UnmarshalSketch(bad); err == nil {
			t.Errorf("accepted garbage of length %d", len(bad))
		}
	}
	wrongVersion := append([]byte(nil), data...)
	wrongVersion[2] = 99
	if _, err := UnmarshalSketch(wrongVersion); err == nil {
		t.Error("accepted wrong envelope version")
	}
	wrongKind := append([]byte(nil), data...)
	wrongKind[3] = 200
	if _, err := UnmarshalSketch(wrongKind); err == nil {
		t.Error("accepted unknown kind byte")
	}
}
