package bounded

import "fmt"

// Option configures a structure at construction time. Every constructor
// has the shape NewX(cfg Config, opts ...Option) (*X, error); options
// that do not apply to the structure being built are rejected with a
// descriptive error rather than silently ignored, and out-of-range
// option values error at the WithX call site's constructor rather than
// being clamped (the historical NewL1Estimator silently replaced a bad
// failure probability with 0.1 — that is exactly the bug class this
// design removes).
type Option func(*sketchOptions) error

// sketchOptions accumulates the applied options; Set flags distinguish
// "defaulted" from "explicitly chosen" so constructors can reject
// options that do not apply to them.
type sketchOptions struct {
	strict      bool
	strictSet   bool
	copies      int
	copiesSet   bool
	failureProb float64
	failureSet  bool
	k           int
	kSet        bool
	capacity    int
	capacitySet bool
}

// Option names, used for the does-not-apply diagnostics.
const (
	optStrict   = "WithStrict"
	optCopies   = "WithCopies"
	optFailure  = "WithFailureProb"
	optK        = "WithK"
	optCapacity = "WithCapacity"
)

// WithStrict selects between the strict turnstile model (true, the
// default: no prefix frequency ever goes negative, enabling exact
// counters) and the general turnstile model (false: Cauchy-sketch scale
// estimates replace the exact counters). Applies to NewHeavyHitters and
// NewL1Estimator.
func WithStrict(strict bool) Option {
	return func(o *sketchOptions) error {
		o.strict = strict
		o.strictSet = true
		return nil
	}
}

// WithCopies sets the number of parallel sampler instances
// (NewL1Sampler): each succeeds with probability Theta(eps), so
// 2/eps copies — the default — give constant failure probability.
func WithCopies(copies int) Option {
	return func(o *sketchOptions) error {
		if copies < 1 {
			return fmt.Errorf("bounded: WithCopies requires at least one instance, got %d", copies)
		}
		o.copies = copies
		o.copiesSet = true
		return nil
	}
}

// WithFailureProb sets the failure probability delta of the strict
// L1 estimator (NewL1Estimator with WithStrict(true), the default);
// the sample budget grows as 1/delta. delta must lie in (0, 1).
func WithFailureProb(delta float64) Option {
	return func(o *sketchOptions) error {
		if !(delta > 0 && delta < 1) {
			return fmt.Errorf("bounded: WithFailureProb requires delta in (0,1), got %v", delta)
		}
		o.failureProb = delta
		o.failureSet = true
		return nil
	}
}

// WithK sets the number of support coordinates the support sampler
// must recover (NewSupportSampler). The default is 32.
func WithK(k int) Option {
	return func(o *sketchOptions) error {
		if k < 1 {
			return fmt.Errorf("bounded: WithK requires at least one coordinate, got %d", k)
		}
		o.k = k
		o.kSet = true
		return nil
	}
}

// WithCapacity sets the number of differing coordinates a sync sketch
// can recover exactly (NewSyncSketch). The default is 256.
func WithCapacity(capacity int) Option {
	return func(o *sketchOptions) error {
		if capacity < 1 {
			return fmt.Errorf("bounded: WithCapacity requires capacity >= 1, got %d", capacity)
		}
		o.capacity = capacity
		o.capacitySet = true
		return nil
	}
}

// buildOptions validates cfg, applies opts over the defaults, and
// rejects any explicitly-set option outside the allowed set for the
// named constructor.
func buildOptions(constructor string, cfg Config, opts []Option, allowed ...string) (*sketchOptions, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := &sketchOptions{
		strict:      true,
		copies:      0, // 0 = the sampler's 2/eps default
		failureProb: 0.1,
		k:           32,
		capacity:    256,
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("bounded: %s received a nil Option", constructor)
		}
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	set := map[string]bool{
		optStrict:   o.strictSet,
		optCopies:   o.copiesSet,
		optFailure:  o.failureSet,
		optK:        o.kSet,
		optCapacity: o.capacitySet,
	}
	for _, name := range allowed {
		delete(set, name)
	}
	for name, wasSet := range set {
		if wasSet {
			return nil, fmt.Errorf("bounded: %s does not apply to %s", name, constructor)
		}
	}
	return o, nil
}
