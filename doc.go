// Package bounded is a from-scratch Go implementation of the algorithms
// in "Data Streams with Bounded Deletions" (Rajesh Jayaram and David P.
// Woodruff, PODS 2018, arXiv:1803.08777).
//
// # The model
//
// A data stream over a universe [n] is a sequence of updates
// (i, delta) applied to a frequency vector f. Splitting f = I - D into
// the insertion vector I and deletion-magnitude vector D, a stream has
// the L_p alpha-property when
//
//	||I + D||_p <= alpha * ||f||_p
//
// at query time (Definition 1). alpha = 1 is the insertion-only model;
// alpha = poly(n) is the unrestricted turnstile model. Real deletion
// workloads — network traffic differences, file synchronization,
// sensor occupancy — sit at small alpha, and there the paper replaces a
// log(n) factor in the space complexity of most fundamental streaming
// problems with log(alpha):
//
//	problem            turnstile lower bound      alpha-property here
//	eps-heavy hitters  eps^-1 log^2 n             eps^-1 log n log alpha
//	inner product      eps^-1 log n               eps^-1 log alpha
//	L1 estimation      log n                      log alpha
//	L0 estimation      eps^-2 log n               eps^-2 log alpha + log n
//	L1 sampling        log^2 n                    log n log alpha
//	support sampling   k log^2 n                  k log n log alpha
//
// # What this package provides
//
// One constructor per Figure 1 row, each wrapping the paper's algorithm
// for that problem (and each internal package also ships the
// unbounded-deletion baseline the paper compares against):
//
//   - NewHeavyHitters — Section 3 (CSSS, Figure 2)
//   - NewL1Estimator — Figure 4 (strict) / Theorem 8 (general)
//   - NewL0Estimator — Figure 7 (windowed KNW matrix)
//   - NewL1Sampler — Figure 3 (precision sampling over CSSS)
//   - NewSupportSampler — Figure 8 (windowed sparse recovery)
//   - NewInnerProduct — Theorem 2 (sampled, universe-reduced sketches)
//   - NewL2HeavyHitters — Appendix A
//   - NewTracker — exact alpha-property measurement (Definitions 1, 2)
//
// Constructors share one shape: NewX(cfg Config, opts ...Option)
// (*X, error). The Config carries the universal parameters (universe
// size, accuracy, assumed alpha, seed); functional options carry the
// structure-specific knobs — WithStrict selects the turnstile model
// (strict is the default), WithFailureProb tunes the strict L1
// estimator, WithCopies the sampler's parallel instances, WithK the
// support budget, WithCapacity the sync sketch's sparsity. Invalid
// configurations and out-of-range or non-applicable options return
// descriptive errors; nothing is silently clamped (the historical API
// replaced a bad L1 failure probability with 0.1 — that bug class is
// gone). The deprecated positional Must* wrappers have now been REMOVED
// after their one-release grace period; migrate as follows:
//
//	removed                          replacement
//	MustHeavyHitters(cfg, strict)    NewHeavyHitters(cfg, WithStrict(strict))
//	MustL1Estimator(cfg, s, delta)   NewL1Estimator(cfg, WithStrict(s), WithFailureProb(delta))
//	MustL0Estimator(cfg)             NewL0Estimator(cfg)
//	MustL1Sampler(cfg, copies)       NewL1Sampler(cfg, WithCopies(copies))
//	MustSupportSampler(cfg, k)       NewSupportSampler(cfg, WithK(k))
//	MustInnerProduct(cfg)            NewInnerProduct(cfg)
//	MustSyncSketch(cfg, capacity)    NewSyncSketch(cfg, WithCapacity(capacity))
//	MustL2HeavyHitters(cfg)          NewL2HeavyHitters(cfg)
//
// (Each New* returns (*X, error); the old wrappers panicked on invalid
// Config, so a mechanical translation is x, err := NewX(...); if err !=
// nil { panic(err) }.)
//
// Every structure implements the Sketch interface —
//
//	Update(i uint64, delta int64)
//	UpdateBatch(batch []Update)
//	UpdateColumns(b *Batch)
//	Merge(other Sketch) error
//	Clone() Sketch
//	SpaceBits() int64
//	MarshalBinary() ([]byte, error)
//	UnmarshalBinary([]byte) error
//
// — so generic code (the engine, a network shipper, a checkpointer)
// handles all eight uniformly. SpaceBits is an information-theoretic
// space account in the paper's cost model, which the benchmark harness
// uses to regenerate Figure 1 empirically. All randomness is seeded
// and deterministic.
//
// # Serialization: sketches cross process boundaries
//
// The paper's headline scenarios — distributed monitoring, file
// synchronization — have each site build a small linear sketch and
// ship it for merging elsewhere. MarshalBinary implements exactly
// that: a versioned, self-describing envelope (magic, kind byte,
// format version, Config echo) around the structure's state INCLUDING
// its hash coefficients, so the receiver reconstructs the identical
// linear map. UnmarshalBinary works on a zero-value receiver;
// UnmarshalSketch dispatches on the kind byte when the receiver does
// not know what it was sent; SketchKind peeks without restoring.
//
//	wire, _ := siteSketch.MarshalBinary()      // site: serialize
//	sk, err := bounded.UnmarshalSketch(wire)   // coordinator: restore
//	err = coordinator.Merge(sk)                // ... and merge
//
// In the sketches' exact regimes, marshal → ship → unmarshal → Merge
// is bit-identical to an in-process Clone + Merge (asserted by
// differential tests on the Fig1 workload for every structure), and
// the restored structure keeps ingesting: counters, sampling clocks,
// candidate trackers and norm scales all round-trip. Corrupt,
// truncated, or wrong-version payloads return errors, never panic —
// enforced by the FuzzUnmarshal target CI runs. The engine exposes the
// same mechanics at aggregate level via Engine.Snapshot/Restore;
// examples/distributedmerge runs the whole exchange across real OS
// processes.
//
// # Performance
//
// The update pipeline is allocation-free in steady state and built for
// throughput:
//
//   - Each Count-Sketch/CSSS row derives its bucket AND sign from ONE
//     4-wise polynomial evaluation (disjoint bit-fields of the 61-bit
//     output), with specialized straight-line Horner chains over
//     2^61 - 1 using lazy reductions, and Lemire multiply-shift fast
//     range instead of a hardware division per bucket.
//   - Query medians select in place over reusable scratch (quickselect
//     plus median networks for the common depths) — no sorting, no
//     allocation — and an update immediately followed by a query of the
//     same index reuses the update's hash evaluations.
//   - Candidate tracking is a bounded min-heap over a linear-probe
//     index: Offer never allocates once warm.
//
// Measured on the Figure 1 benchmarks (bench_test.go, containerized
// linux/amd64, Go 1.24; before/after binaries interleaved over 5
// rounds to cancel machine drift, medians reported), this pipeline
// rebuild moved the two hottest update paths from
//
//	BenchmarkFig1HeavyHittersStrict   669 ns/op  1 alloc/op  ->  184 ns/op  0 allocs/op  (3.6x; 4.1x on min-vs-min)
//	BenchmarkFig3AlphaL1Sampler      3059 ns/op  4 allocs/op -> 1002 ns/op  0 allocs/op  (3.1x)
//
// BENCH_1.json at the repository root archives the full post-change
// baseline (regenerate with `go test -run '^$' -bench 'Fig1|Fig2|Fig3'
// -benchmem | go run ./cmd/benchjson`); CI re-emits it on every push so
// future PRs can diff their perf trajectory.
//
// Beneath the batch evaluators sits a dispatchable kernel layer
// (internal/hash): the inner loops — Horner chains over 2^61 - 1,
// bucket+sign extraction, row gathers, column medians — route through
// a table chosen once at init. On amd64 CPUs with AVX2 the table
// points at hand-written 4-lane assembly (VPMULUDQ 32-bit-halves
// decomposition of the Mersenne-61 multiply); everywhere else, and
// under the purego build tag (`go test -tags purego ./...`), it
// points at the scalar loops. The two paths are bit-identical —
// asserted per kernel by differential and fuzz tests and per
// structure by whole-state wire comparisons — so sketches hashed on
// different hosts still merge exactly.
//
// The row-structured kernels are FUSED: one entry point takes the
// flat coefficient (or table) bundle for all sketch rows plus the row
// width and loops rows inside the call, so a whole multi-row batch
// evaluation (Buckets.BucketSignsBatch, PairRows.RangeBatchRows, the
// GatherSignRows/GatherSignDiffRows query gathers) pays ONE vector
// entry cost — the per-call vector-unit power-up after VZEROUPPER,
// ~1.5us on the reference Xeon — instead of one per row. Each
// dispatch compares its total key count (rows x batch length for the
// fused forms) against a per-family cutover calibrated at package
// init by a scalar-vs-vector microprobe on the running host;
// BD_KERNEL_CUTOVER overrides calibration (one integer for all
// families, or comma-separated family=value pairs), purego builds
// skip both and keep the scalar loops. hash.KernelCutovers and
// hash.KernelCutoverSource expose the resolved values; cmd/benchjson
// archives them with every baseline. Same-run ratios on the
// BENCH_8.json reference host: 1.85x on BucketSignsBatch at 1024
// keys vs scalar (2.35x at 4096), 7.9x on MedianOf7Cols, 1.9x on row
// gathers, with the fused-vs-per-row delta reported by the
// kernel=avx2 vs kernel=avx2-perrow sub-benchmarks. GOAMD64 does not
// change dispatch (detection is runtime CPUID), and single-CPU hosts
// see the full win — the kernels vectorize within one core, not
// across cores.
//
// # Batched ingest: the plan → hash → apply columnar pipeline
//
// Every structure accepts a batch of updates in one call — the
// preferred high-throughput path:
//
//	batch := make([]bounded.Update, 0, 4096)
//	// ... append network reads ...
//	hh.UpdateBatch(batch) // one call per structure per batch
//
// Internally every batch runs a three-stage columnar pipeline:
//
//  1. PLAN — the batch is laid out as contiguous index and delta
//     columns in a pooled arena Batch (UpdateBatch does this for you;
//     PlanBatch + UpdateColumns is the explicit form, and lets one
//     planned batch fan across several structures).
//  2. HASH — the structure's batch evaluators fill whole bucket/sign
//     columns per Count-Sketch row from the shared index column:
//     straight-line multiply-add loops with the row coefficients in
//     registers, no per-item function calls.
//  3. APPLY — the counter tables are swept row-major against the
//     pre-hashed columns (sequential column reads, one cache-resident
//     table row at a time), and candidate tracking re-estimates the
//     batch's DISTINCT indices in one further batched hash pass.
//
// The columnar path is bit-for-bit identical to feeding the same
// updates through Update: counter adds commute, per-counter write
// order is preserved, and sampling stages (CSSS past its rate-1
// regime, the precision sampler, subsampling levels) fall back to the
// per-item path exactly where rng draws occur, preserving the draw
// sequence. Differential tests assert this equality per structure and
// through the engine at 1/2/4/8 shards.
//
// # Querying: capability-typed interfaces and columnar batched reads
//
// The query side mirrors the ingest side. Where Sketch describes what
// every structure consumes, six small capability interfaces describe
// what each structure can answer — generic consumers declare the
// capability they need instead of switching on concrete types:
//
//	PointQuerier       Estimate(i) float64       HeavyHitters, L2HeavyHitters
//	BatchPointQuerier  + EstimateBatch/Columns   HeavyHitters, L2HeavyHitters
//	ScalarQuerier      Estimate() float64        L1Estimator, L0Estimator, InnerProduct
//	SetQuerier         Members() []uint64        HeavyHitters, L2HeavyHitters, SupportSampler
//	SampleQuerier      Sample() (Sample, bool)   L1Sampler
//	Prober             Contains(i) bool          SupportSampler
//
// (The authoritative table is the compile-time assert block in
// querier.go, next to the _ Sketch = ... block.)
//
// Batched reads run the same plan → hash → apply shape as batched
// writes, with "apply" replaced by "gather": EstimateBatch hashes the
// WHOLE index set in one batch evaluation per sketch row, gathers the
// per-row estimates in row-major table sweeps (each table row's reads
// happen while that row is cache-resident), and selects the per-index
// medians at the end — one hash pass for the whole index set instead
// of one per index, bit-identical to per-index Estimate. The two-tier
// split mirrors UpdateBatch/UpdateColumns:
//
//	ests := hh.EstimateBatch(idxs)       // convenience: one call, pooled scratch
//
//	b := bounded.GetBatch()              // explicit: plan once, query repeatedly
//	b.LoadKeys(idxs)
//	out := make([]float64, b.Len())
//	hh.EstimateColumns(b, out)           // reuses b's hash-column scratch
//	bounded.PutBatch(b)
//
// Queries share per-structure scratch with updates (that is where the
// zero allocations come from), so a structure is single-goroutine for
// queries AND updates — shard across instances, or query through the
// engine, for parallel readers.
//
// Query methods on a zero-value structure (never constructed, or left
// untouched by a failed UnmarshalBinary) panic with a diagnostic that
// names the structure and the fix ("construct with NewX or restore
// with UnmarshalBinary first") instead of nil-panicking deep inside an
// internal package.
//
// # Concurrency and the sharded ingest engine
//
// Each structure is single-goroutine: updates AND queries reuse
// per-structure scratch buffers (that reuse is where the zero
// allocations come from), so neither concurrent updates nor concurrent
// queries on one structure are safe.
//
// For parallel ingest, use the repro/engine package instead of locking
// a structure: engine.New(cfg, engine.Options{Shards: S}) owns S
// single-writer shards (one goroutine each, fed through bounded batch
// channels whose blocking IS the backpressure), hash-partitions every
// ingested batch across them with the library's fast-range hash, and
// answers queries from merged snapshots. That design leans on the
// mergeability layer in this package: every structure exposes the
// Sketch interface's
//
//	Merge(other Sketch) error  // fold a same-Config instance in; counters add
//	Clone() Sketch             // deep snapshot, safe to merge/query elsewhere
//
// because all of the paper's sketches are linear (or monotone) in their
// input stream — Count-Sketch/CSSS tables add coordinate-wise (CSSS
// aligns sampling rates by extra halvings first), subsampling bins add
// modulo the shared prime, candidate trackers re-rank the union under
// merged estimates, and InnerProduct's f- and g-sketches each add
// coordinate-wise. Merge requires both instances to come from the SAME
// Config (seed included) and reports a descriptive error otherwise; in
// the sketches' exact regimes a merged snapshot is bit-identical to a
// single-writer structure fed the concatenated stream, which the
// engine's differential tests assert. One caveat: InnerProduct
// sketches TWO streams, so the engine's single-partition Ingest does
// not feed it — merge InnerProduct instances directly (each site calls
// UpdateF/UpdateG) rather than through engine shards.
//
// The engine's Ingest is itself columnar: one batch hash evaluation
// computes every update's shard, indices and deltas scatter into
// per-shard column batches, and each shard goroutine receives
// ready-to-apply columns. Routed queries bypass snapshots entirely:
// Engine.Estimate routes to the index's OWNING shard (the partition
// hash sends every update for an index to one shard) and runs in that
// shard's goroutine — no all-shard flush barrier, no merged-view
// rebuild (Engine.SnapshotBuilds counts rebuilds; routed queries never
// move it). Engine.EstimateBatch is the batched form and the read-side
// mirror of Ingest: one hash evaluation computes every queried index's
// owning shard, the index set scatters by column, shards answer their
// columns concurrently with the structures' batched readers, and the
// results reassemble in input order — bit-identical to per-index
// Estimate, and >= 2x cheaper per index at batch >= 256 because the
// per-query shard crossing amortizes across the batch.
// Engine.Probe(i) routes a support membership probe the same way, and
// Engine.Support unions the shards' live recoveries (partition
// completeness makes them disjoint) without a single clone or merge.
// Global queries (HeavyHitters, L1, ...) still answer from the merged
// snapshot, behind a generation-tagged cache that is checked before
// the engine mutex, so query bursts do not stall producers.
//
// Pick the engine when ingest throughput is the bottleneck and cores
// are available (producers can be many goroutines; Ingest is
// concurrency-safe); pick a direct structure when one goroutine keeps
// up — global engine queries pay S snapshots plus S-1 merges per
// refresh, a direct structure answers from live state.
// examples/shardedingest walks the full pattern end to end.
//
// Invalid configurations no longer clamp silently: Config.Validate
// rejects N < 2, N > 2^44, Eps outside (0,1) and Alpha < 1, and every
// constructor — engine.New included — returns that error.
//
// # Observability
//
// The repro/internal/obs package is a zero-dependency, allocation-free
// metrics core (cache-line-padded atomic counters, log2-bucketed
// lock-free latency histograms, gauges) threaded through the engine,
// the shard workers, the columnar batch arena, and the kernel
// dispatcher. Engine.Stats() returns an exact point-in-time snapshot —
// ingest calls/keys/batches with latency, query counts and latency by
// path (point / batched / merged), snapshot rebuilds, flush and close
// timings, and per-shard applied work, busy time, send stalls and
// queue depth. After a Flush the identities are exact: batches applied
// sum to batches sent, keys applied sum to keys ingested.
// Engine.ExposeMetrics mounts those series on an obs.Registry, and
// obs.Handler() serves every registered metric as Prometheus text or
// JSON (?format=json); examples/netmon -listen is the live demo.
// Shard goroutines carry pprof labels (shard=N) and merged-view
// rebuilds emit runtime/trace task/regions (engine.snapshotBuild,
// engine.cloneShards, engine.mergeShards, shard.apply) when tracing is
// enabled. Building with -tags noobs compiles the whole layer out
// (zero-size counters, no-op recording; Stats reads zero except Shards
// and SnapshotBuilds, which stays exact in every flavor); BENCH_6.json
// records the enabled build at parity with the noobs build on the
// Fig1 ingest paths, and CI enforces a <2% overhead budget.
//
// # Networked aggregation
//
// The repro/internal/netagg package and the cmd/bdagent + cmd/bdaggd
// binaries run the paper's distributed monitoring scenario as a real
// service: site Agents ingest their local substream through the
// sharded engine and periodically ship engine-merged snapshots — as
// framed repro/internal/netproto messages over TCP — to an Aggregator
// that holds every agent's latest state, merges it into a cached
// global view, and answers Client queries for the union stream.
//
//	site stream ─▶ Agent[engine] ──SNAPSHOT/ACK──▶ ┐
//	site stream ─▶ Agent[engine] ──SNAPSHOT/ACK──▶ ├─ Aggregator ──ANSWER──▶ Client
//	site stream ─▶ Agent[engine] ──SNAPSHOT/ACK──▶ ┘
//
// The protocol is HELLO/WELCOME (version negotiation plus an exact
// Config-echo admission gate — same seed or the sketches are not
// mergeable), SNAPSHOT/ACK (full engine-merged state per enabled
// structure), and QUERY/ANSWER (point estimates, heavy hitters, L1,
// support). Sync is generation-gated: an idle agent whose engine
// Generation has not moved since the last ACK ships nothing at all.
// Because snapshots carry full state, a resend after a lost ACK or a
// reconnect REPLACES the agent's prior contribution rather than
// double-counting, and the aggregator commits each snapshot
// atomically (every blob decodes or none applies). In the sketches'
// exact regimes the aggregator's answers are bit-identical to one
// engine fed every site's stream — asserted over real loopback
// sockets, mid-run reconnect included, by internal/netagg's
// differential test. examples/distributedmerge is the one-shot,
// pipe-based precursor showing the same frames without the lifecycle.
//
// See DESIGN.md for the system inventory and the laptop-scale parameter
// substitutions, and EXPERIMENTS.md for measured results per table and
// figure.
package bounded
