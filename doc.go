// Package bounded is a from-scratch Go implementation of the algorithms
// in "Data Streams with Bounded Deletions" (Rajesh Jayaram and David P.
// Woodruff, PODS 2018, arXiv:1803.08777).
//
// # The model
//
// A data stream over a universe [n] is a sequence of updates
// (i, delta) applied to a frequency vector f. Splitting f = I - D into
// the insertion vector I and deletion-magnitude vector D, a stream has
// the L_p alpha-property when
//
//	||I + D||_p <= alpha * ||f||_p
//
// at query time (Definition 1). alpha = 1 is the insertion-only model;
// alpha = poly(n) is the unrestricted turnstile model. Real deletion
// workloads — network traffic differences, file synchronization,
// sensor occupancy — sit at small alpha, and there the paper replaces a
// log(n) factor in the space complexity of most fundamental streaming
// problems with log(alpha):
//
//	problem            turnstile lower bound      alpha-property here
//	eps-heavy hitters  eps^-1 log^2 n             eps^-1 log n log alpha
//	inner product      eps^-1 log n               eps^-1 log alpha
//	L1 estimation      log n                      log alpha
//	L0 estimation      eps^-2 log n               eps^-2 log alpha + log n
//	L1 sampling        log^2 n                    log n log alpha
//	support sampling   k log^2 n                  k log n log alpha
//
// # What this package provides
//
// One constructor per Figure 1 row, each wrapping the paper's algorithm
// for that problem (and each internal package also ships the
// unbounded-deletion baseline the paper compares against):
//
//   - NewHeavyHitters — Section 3 (CSSS, Figure 2)
//   - NewL1Estimator — Figure 4 (strict) / Theorem 8 (general)
//   - NewL0Estimator — Figure 7 (windowed KNW matrix)
//   - NewL1Sampler — Figure 3 (precision sampling over CSSS)
//   - NewSupportSampler — Figure 8 (windowed sparse recovery)
//   - NewInnerProduct — Theorem 2 (sampled, universe-reduced sketches)
//   - NewL2HeavyHitters — Appendix A
//   - NewTracker — exact alpha-property measurement (Definitions 1, 2)
//
// Every structure reports SpaceBits(), an information-theoretic space
// account in the paper's cost model, which the benchmark harness uses
// to regenerate Figure 1 empirically. All randomness is seeded and
// deterministic.
//
// See DESIGN.md for the system inventory and the laptop-scale parameter
// substitutions, and EXPERIMENTS.md for measured results per table and
// figure.
package bounded
